#include "dds/engine.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "dds/naive_exact.h"
#include "dds/solver.h"
#include "dds/weighted_dds.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

// Random weighted graph with weights in [1, max_w], via the seeded
// weighted generator (graph/generators.h).
WeightedDigraph RandomWeighted(uint32_t n, int64_t arcs, int64_t max_w,
                               uint64_t seed) {
  WeightOptions options;
  options.max_weight = max_w;
  return UniformWeightedDigraph(n, arcs, seed, options);
}

void ExpectSameSolution(const DdsSolution& a, const DdsSolution& b) {
  EXPECT_EQ(a.pair.s, b.pair.s);
  EXPECT_EQ(a.pair.t, b.pair.t);
  EXPECT_EQ(a.density, b.density);  // bit-identical, not just near
  EXPECT_EQ(a.pair_edges, b.pair_edges);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.upper_bound, b.upper_bound);
  EXPECT_EQ(a.interrupted, b.interrupted);
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, CoversEveryAlgorithmExactlyOnce) {
  const auto registry = AlgorithmRegistry();
  EXPECT_EQ(registry.size(), 8u);
  for (const AlgorithmInfo& info : registry) {
    // Enum -> row and name -> row agree with the row itself.
    EXPECT_EQ(FindAlgorithm(info.algorithm), &info);
    EXPECT_EQ(FindAlgorithm(std::string_view(info.name)), &info);
    // The registry is the source of truth for the name helpers.
    EXPECT_STREQ(AlgorithmName(info.algorithm), info.name);
    const auto parsed = ParseAlgorithmName(info.name);
    ASSERT_TRUE(parsed.has_value()) << info.name;
    EXPECT_EQ(*parsed, info.algorithm);
    EXPECT_EQ(IsExactAlgorithm(info.algorithm), info.exact);
    EXPECT_EQ(IsWeightedCapableAlgorithm(info.algorithm),
              info.weighted_capable);
    // Runner invariants: one weight-dispatched runner per row;
    // workspace-using (anytime-capable) rows are exact solvers.
    EXPECT_NE(info.run, nullptr) << info.name;
    if (info.uses_workspace) {
      EXPECT_TRUE(info.exact) << info.name;
    }
  }
  EXPECT_EQ(FindAlgorithm(std::string_view("bogus")), nullptr);
  EXPECT_EQ(FindAlgorithm(static_cast<DdsAlgorithm>(999)), nullptr);
}

TEST(RegistryTest, HelpStringListsEveryName) {
  const std::string help = AlgorithmNamesHelp();
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    EXPECT_NE(help.find(info.name), std::string::npos) << info.name;
  }
  // Every algorithm is weight-generic now: the weighted help is the full
  // list, derived from the same rows (the CLI --algo help can't go stale).
  const std::string weighted_help =
      AlgorithmNamesHelp(/*weighted_only=*/true);
  EXPECT_EQ(weighted_help, help);
  EXPECT_NE(weighted_help.find("peel-approx"), std::string::npos);
  EXPECT_NE(weighted_help.find("batch-peel-approx"), std::string::npos);
  EXPECT_NE(weighted_help.find("lp-exact"), std::string::npos);
}

TEST(RegistryTest, EveryRowIsWeightedCapable) {
  // The acceptance bar of the weight-generic approximation pipeline:
  // zero weighted_capable=false rows remain.
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    EXPECT_TRUE(info.weighted_capable) << info.name;
  }
}

// ----------------------------------------------------------------- engine

TEST(DdsEngineTest, AllAlgorithmsReachableAndAgreeWithFreeFunctions) {
  const Digraph g = UniformDigraph(8, 25, 3);
  DdsEngine engine(g);
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    DdsRequest request;
    request.algorithm = info.algorithm;
    const Result<DdsSolution> via_engine = engine.Solve(request);
    ASSERT_TRUE(via_engine.ok()) << info.name;
    const DdsSolution direct = RunDdsAlgorithm(g, info.algorithm);
    EXPECT_EQ(via_engine.value().density, direct.density) << info.name;
    EXPECT_EQ(via_engine.value().pair.s, direct.pair.s) << info.name;
    EXPECT_EQ(via_engine.value().pair.t, direct.pair.t) << info.name;
  }
  EXPECT_EQ(engine.num_solves(),
            static_cast<int64_t>(AlgorithmRegistry().size()));
}

TEST(DdsEngineTest, RepeatSolveReusesWorkspaceAndIsBitIdentical) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const Digraph g = UniformDigraph(24, 110, seed);
    const DdsSolution one_shot = CoreExact(g);
    DdsEngine engine(g);
    DdsRequest request;
    request.algorithm = DdsAlgorithm::kCoreExact;
    const DdsSolution first = engine.Solve(request).value();
    const DdsSolution second = engine.Solve(request).value();
    ExpectSameSolution(first, one_shot);
    ExpectSameSolution(second, one_shot);
    ExpectSameSolution(second, first);
    // Workspace amortization is observable: the second solve records the
    // solve it inherited scratch from.
    EXPECT_EQ(first.stats.prior_engine_solves, 0);
    EXPECT_EQ(second.stats.prior_engine_solves, 1);
    EXPECT_EQ(one_shot.stats.prior_engine_solves, 0);
    // Queries that never touch the workspace don't inflate the signal.
    DdsRequest approx;
    approx.algorithm = DdsAlgorithm::kCoreApprox;
    EXPECT_EQ(engine.Solve(approx).value().stats.prior_engine_solves, 2);
    DdsRequest third;
    third.algorithm = DdsAlgorithm::kCoreExact;
    EXPECT_EQ(engine.Solve(third).value().stats.prior_engine_solves, 2);
    // Identical trajectory, identical work counters.
    EXPECT_EQ(second.stats.flow_networks_built,
              first.stats.flow_networks_built);
    EXPECT_EQ(second.stats.binary_search_iters,
              first.stats.binary_search_iters);
  }
}

TEST(DdsEngineTest, WeightedFacadeMatchesDirectSolvers) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const WeightedDigraph g = RandomWeighted(12, 40, 5, seed);
    DdsEngine engine(g);
    DdsRequest request;
    request.algorithm = DdsAlgorithm::kCoreExact;
    const DdsSolution via_engine = engine.Solve(request).value();
    const DdsSolution direct = WeightedCoreExact(g);
    ExpectSameSolution(via_engine, direct);

    request.algorithm = DdsAlgorithm::kNaiveExact;
    const DdsSolution naive = engine.Solve(request).value();
    EXPECT_NEAR(via_engine.density, naive.density, 1e-9);

    request.algorithm = DdsAlgorithm::kCoreApprox;
    const DdsSolution approx = engine.Solve(request).value();
    EXPECT_GE(approx.density * 2.0 + 1e-9, naive.density);
    EXPECT_LE(naive.density, approx.upper_bound + 1e-9);
  }
}

TEST(DdsEngineTest, WeightedEngineServesTheFullRegistry) {
  // Every algorithm — exact, LP and both peel approximations — validates
  // and solves on a weighted engine, and approximations report certified
  // brackets of the weighted optimum.
  const WeightedDigraph g = RandomWeighted(8, 20, 3, 1);
  const double optimum = WeightedNaiveExact(g).density;
  DdsEngine engine(g);
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    DdsRequest request;
    request.algorithm = info.algorithm;
    const Result<DdsSolution> result = engine.Solve(request);
    ASSERT_TRUE(result.ok()) << info.name;
    const DdsSolution& sol = result.value();
    if (info.exact) {
      EXPECT_NEAR(sol.density, optimum, 1e-6) << info.name;
    } else {
      EXPECT_LE(sol.density, optimum + 1e-9) << info.name;
      EXPECT_GE(sol.upper_bound + 1e-9, optimum) << info.name;
    }
    EXPECT_NEAR(sol.density, WeightedDensity(g, sol.pair.s, sol.pair.t),
                1e-12)
        << info.name;
  }
}

// All-weights-1 weighted approximation solves run the same templated code
// as the unweighted engine — the whole DdsSolution, including every
// SolverStats counter, must be bit-identical through the facade.
TEST(DdsEngineTest, UnitWeightApproxSolvesBitIdenticalToUnweighted) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const Digraph base = RmatDigraph(6, 400, seed);
    const WeightedDigraph unit = WeightedDigraph::FromDigraph(base);
    DdsEngine plain_engine(base);
    DdsEngine weighted_engine(unit);
    for (DdsAlgorithm algorithm :
         {DdsAlgorithm::kPeelApprox, DdsAlgorithm::kBatchPeelApprox,
          DdsAlgorithm::kCoreApprox}) {
      DdsRequest request;
      request.algorithm = algorithm;
      const DdsSolution plain = plain_engine.Solve(request).value();
      const DdsSolution weighted = weighted_engine.Solve(request).value();
      ExpectSameSolution(weighted, plain);
      EXPECT_EQ(weighted.stats.ratios_probed, plain.stats.ratios_probed)
          << AlgorithmName(algorithm) << " seed " << seed;
      EXPECT_EQ(weighted.stats.binary_search_iters,
                plain.stats.binary_search_iters)
          << AlgorithmName(algorithm) << " seed " << seed;
    }
  }
}

TEST(DdsEngineTest, OversizedGraphsFailAsStatusNotAbort) {
  // 80 vertices: beyond naive-exact (14) and lp-exact (64) limits.
  const Digraph big = UniformDigraph(80, 300, 1);
  DdsEngine engine(big);
  for (DdsAlgorithm algorithm :
       {DdsAlgorithm::kNaiveExact, DdsAlgorithm::kLpExact}) {
    DdsRequest request;
    request.algorithm = algorithm;
    const Result<DdsSolution> result = engine.Solve(request);
    ASSERT_FALSE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // flow-exact's exhaustive enumeration guard is max_exhaustive_n.
  DdsRequest flow;
  flow.algorithm = DdsAlgorithm::kFlowExact;
  flow.exact.max_exhaustive_n = 50;
  const Result<DdsSolution> rejected = engine.Solve(flow);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  flow.exact.max_exhaustive_n = 100;  // now n=80 fits
  EXPECT_TRUE(engine.Solve(flow).ok());
}

// ------------------------------------------------------------- validation

TEST(ValidateRequestTest, RejectsBadOptions) {
  const Digraph g = UniformDigraph(8, 20, 1);
  DdsEngine engine(g);

  DdsRequest bad_exhaustive;
  bad_exhaustive.exact.max_exhaustive_n = 0;
  EXPECT_EQ(ValidateRequest(bad_exhaustive).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.Solve(bad_exhaustive).ok());

  DdsRequest nan_deadline;
  nan_deadline.deadline_seconds =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ValidateRequest(nan_deadline).code(),
            StatusCode::kInvalidArgument);

  DdsRequest negative_deadline;
  negative_deadline.deadline_seconds = -1.0;
  EXPECT_EQ(ValidateRequest(negative_deadline).code(),
            StatusCode::kInvalidArgument);

  DdsRequest bad_epsilon;
  bad_epsilon.algorithm = DdsAlgorithm::kPeelApprox;
  bad_epsilon.peel.epsilon = 0.0;
  EXPECT_EQ(ValidateRequest(bad_epsilon).code(),
            StatusCode::kInvalidArgument);
  // The same broken knob is ignored by an algorithm that never reads it,
  // so a request object can be reused across algorithms.
  bad_epsilon.algorithm = DdsAlgorithm::kCoreApprox;
  EXPECT_TRUE(ValidateRequest(bad_epsilon).ok());

  // A FlowEngine value outside the registry (e.g. from a miscast int) is
  // rejected as a Status, not an abort — and, like peel.epsilon above,
  // only by the algorithms that actually run flow probes.
  DdsRequest bad_engine;
  bad_engine.algorithm = DdsAlgorithm::kCoreExact;
  bad_engine.exact.flow_engine = static_cast<FlowEngine>(42);
  EXPECT_EQ(ValidateRequest(bad_engine).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.Solve(bad_engine).ok());
  bad_engine.algorithm = DdsAlgorithm::kCoreApprox;
  EXPECT_TRUE(ValidateRequest(bad_engine).ok());
  for (FlowEngine good :
       {FlowEngine::kAuto, FlowEngine::kDinic, FlowEngine::kPushRelabel}) {
    DdsRequest request;
    request.algorithm = DdsAlgorithm::kCoreExact;
    request.exact.flow_engine = good;
    EXPECT_TRUE(ValidateRequest(request).ok())
        << FlowEngineName(good);
  }

  DdsRequest bad_algorithm;
  bad_algorithm.algorithm = static_cast<DdsAlgorithm>(123);
  EXPECT_EQ(ValidateRequest(bad_algorithm).code(),
            StatusCode::kInvalidArgument);
  // The engine surfaces the same error as a Status, not a crash.
  EXPECT_FALSE(engine.Solve(bad_algorithm).ok());

  DdsRequest fine;  // defaults validate
  EXPECT_TRUE(ValidateRequest(fine).ok());
  // Failed solves do not count as served.
  EXPECT_EQ(engine.num_solves(), 0);
}

// `exact` is honored on weighted engines since the weight-policy
// redesign, so it is validated there too — both the request-level check
// and the graph-aware exhaustive-enumeration guard.
TEST(ValidateRequestTest, WeightedEngineValidatesExactOptions) {
  const WeightedDigraph g = RandomWeighted(8, 20, 3, 2);
  DdsEngine engine(g);
  DdsRequest bad;
  bad.algorithm = DdsAlgorithm::kCoreExact;
  bad.exact.max_exhaustive_n = 0;
  EXPECT_EQ(ValidateRequest(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.Solve(bad).ok());

  const WeightedDigraph big = RandomWeighted(30, 90, 4, 3);
  DdsEngine big_engine(big);
  DdsRequest flow;
  flow.algorithm = DdsAlgorithm::kFlowExact;
  flow.exact.max_exhaustive_n = 20;
  const Result<DdsSolution> rejected = big_engine.Solve(flow);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  flow.exact.max_exhaustive_n = 30;  // now n=30 fits
  EXPECT_TRUE(big_engine.Solve(flow).ok());
}

// The redesign's payoff at the facade: every ExactOptions knob reaches a
// weighted solve, observably (parametric reuse toggles, size traces) and
// bit-identically across the ablation of the probe engine.
TEST(DdsEngineTest, WeightedSolvesHonorExactOptions) {
  const WeightedDigraph g = RandomWeighted(24, 110, 5, 11);
  DdsEngine engine(g);
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreExact;
  request.exact.record_network_sizes = true;
  const DdsSolution incremental = engine.Solve(request).value();
  EXPECT_GT(incremental.stats.flow_networks_reused, 0);
  EXPECT_FALSE(incremental.stats.network_sizes.empty());

  request.exact.incremental_probe = false;
  const DdsSolution fresh = engine.Solve(request).value();
  EXPECT_EQ(fresh.stats.flow_networks_reused, 0);
  ExpectSameSolution(fresh, incremental);
  EXPECT_EQ(fresh.stats.binary_search_iters,
            incremental.stats.binary_search_iters);
  EXPECT_EQ(fresh.stats.flow_networks_built,
            incremental.stats.flow_networks_built +
                incremental.stats.flow_networks_reused);
}

// ---------------------------------------------------------------- anytime

TEST(AnytimeTest, DeadlineTruncatedSolveBracketsOptimum) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Digraph g = UniformDigraph(11, 45, seed);
    const double optimum = NaiveExact(g).density;
    DdsEngine engine(g);
    DdsRequest request;
    request.algorithm = DdsAlgorithm::kCoreExact;
    request.deadline_seconds = 1e-9;  // expires before the first min cut
    const DdsSolution sol = engine.Solve(request).value();
    ASSERT_TRUE(sol.interrupted) << "seed " << seed;
    // The certified interval must bracket the true optimum, and the
    // incumbent (the approx warm start at this budget) must witness the
    // lower bound exactly.
    EXPECT_LE(sol.lower_bound, optimum + 1e-9) << "seed " << seed;
    EXPECT_GE(sol.upper_bound + 1e-9, optimum) << "seed " << seed;
    EXPECT_EQ(sol.lower_bound, sol.density);
    EXPECT_GT(sol.density, 0.0);  // warm start ran before the deadline
    EXPECT_LE(sol.lower_bound, sol.upper_bound + 1e-12);
  }
}

TEST(AnytimeTest, CancellationViaCallbackBracketsOptimum) {
  for (int64_t budget : {1, 3, 7, 20}) {
    const Digraph g = UniformDigraph(12, 50, 7);
    const double optimum = NaiveExact(g).density;
    DdsEngine engine(g);
    DdsRequest request;
    request.algorithm = DdsAlgorithm::kCoreExact;
    int64_t calls = 0;
    request.progress = [&calls, budget](const DdsProgress& progress) {
      // Fields are best-effort telemetry (probe-local inside a probe);
      // only sanity-check, don't assume cross-field invariants.
      EXPECT_GE(progress.elapsed_seconds, 0.0);
      EXPECT_GE(progress.upper_bound, 0.0);
      return ++calls < budget;
    };
    const DdsSolution sol = engine.Solve(request).value();
    EXPECT_GE(calls, 1);
    EXPECT_LE(sol.lower_bound, optimum + 1e-9) << "budget " << budget;
    EXPECT_GE(sol.upper_bound + 1e-9, optimum) << "budget " << budget;
    if (!sol.interrupted) {
      // Ran to completion before the budget: must be exact.
      EXPECT_NEAR(sol.density, optimum, 1e-6);
    }
  }
}

// The exhaustive path (flow-exact) must notice a cancellation that fires
// inside the *last* ratio's probe — the spot a loop-top check alone would
// miss — and report interruption with certified bounds.
TEST(AnytimeTest, ExhaustiveLateCancellationStillReportsInterruption) {
  const Digraph g = UniformDigraph(10, 40, 3);
  const double optimum = NaiveExact(g).density;
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kFlowExact;
  int64_t total = 0;
  request.progress = [&total](const DdsProgress&) {
    ++total;
    return true;
  };
  DdsEngine engine(g);
  const DdsSolution full = engine.Solve(request).value();
  ASSERT_FALSE(full.interrupted);
  EXPECT_NEAR(full.density, optimum, 1e-6);
  ASSERT_GT(total, 2);
  for (const int64_t cancel_at : {total, total - 1}) {
    DdsEngine fresh(g);
    int64_t calls = 0;
    request.progress = [&calls, cancel_at](const DdsProgress&) {
      return ++calls < cancel_at;
    };
    const DdsSolution sol = fresh.Solve(request).value();
    EXPECT_EQ(calls, cancel_at);  // deterministic trajectory up to the cut
    EXPECT_TRUE(sol.interrupted) << "cancel_at " << cancel_at;
    EXPECT_LE(sol.lower_bound, optimum + 1e-9);
    EXPECT_GE(sol.upper_bound + 1e-9, optimum);
  }
}

TEST(AnytimeTest, GenerousDeadlineStillProvesOptimality) {
  const Digraph g = UniformDigraph(10, 35, 2);
  const double optimum = NaiveExact(g).density;
  DdsEngine engine(g);
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreExact;
  request.deadline_seconds = 300.0;
  const DdsSolution sol = engine.Solve(request).value();
  EXPECT_FALSE(sol.interrupted);
  EXPECT_NEAR(sol.density, optimum, 1e-6);
  EXPECT_EQ(sol.lower_bound, sol.upper_bound);
}

TEST(AnytimeTest, WeightedDeadlineTruncationIsCertified) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const WeightedDigraph g = RandomWeighted(11, 40, 4, seed);
    if (g.TotalWeight() == 0) continue;
    const double optimum = WeightedNaiveExact(g).density;
    DdsEngine engine(g);
    DdsRequest request;
    request.algorithm = DdsAlgorithm::kCoreExact;
    request.deadline_seconds = 1e-9;
    const DdsSolution sol = engine.Solve(request).value();
    ASSERT_TRUE(sol.interrupted) << "seed " << seed;
    EXPECT_LE(sol.lower_bound, optimum + 1e-9) << "seed " << seed;
    EXPECT_GE(sol.upper_bound + 1e-9, optimum) << "seed " << seed;
  }
}

// Engine solves after an interrupted one must not inherit stale state:
// the next full solve still returns the exact answer.
TEST(AnytimeTest, EngineRecoversAfterInterruptedSolve) {
  const Digraph g = UniformDigraph(12, 50, 9);
  const DdsSolution one_shot = CoreExact(g);
  DdsEngine engine(g);
  DdsRequest truncated;
  truncated.algorithm = DdsAlgorithm::kCoreExact;
  truncated.deadline_seconds = 1e-9;
  (void)engine.Solve(truncated).value();
  DdsRequest full;
  full.algorithm = DdsAlgorithm::kCoreExact;
  const DdsSolution after = engine.Solve(full).value();
  EXPECT_EQ(after.density, one_shot.density);
  EXPECT_EQ(after.pair.s, one_shot.pair.s);
  EXPECT_EQ(after.pair.t, one_shot.pair.t);
  EXPECT_FALSE(after.interrupted);
}

// --------------------------------------------------------------- summary

TEST(SolutionJsonTest, ContainsKeyFieldsAndFlags) {
  const Digraph g = UniformDigraph(10, 30, 4);
  DdsEngine engine(g);
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreApprox;
  const DdsSolution sol = engine.Solve(request).value();
  const std::string json = SolutionJson(sol);
  EXPECT_NE(json.find("\"density\": "), std::string::npos);
  EXPECT_NE(json.find("\"s\": ["), std::string::npos);
  EXPECT_NE(json.find("\"t\": ["), std::string::npos);
  EXPECT_NE(json.find("\"interrupted\": false"), std::string::npos);
  EXPECT_NE(json.find("\"ratios_probed\": "), std::string::npos);
  EXPECT_NE(json.find("\"prior_engine_solves\": 0"), std::string::npos);
}

TEST(SolutionJsonTest, TranslatesLabelsWhenProvided) {
  DdsSolution sol;
  sol.pair.s = {0, 2};
  sol.pair.t = {1};
  const std::string json = SolutionJson(sol, {100, 200, 300});
  EXPECT_NE(json.find("\"s\": [100,300]"), std::string::npos);
  EXPECT_NE(json.find("\"t\": [200]"), std::string::npos);
}

}  // namespace
}  // namespace ddsgraph
