#include "util/flags.h"

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  FlagSet flags("prog", "test");
  int64_t* n = flags.Int64("n", 42, "count");
  double* rate = flags.Double("rate", 0.5, "rate");
  bool* verbose = flags.Bool("verbose", false, "verbosity");
  std::string* name = flags.String("name", "x", "name");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*rate, 0.5);
  EXPECT_FALSE(*verbose);
  EXPECT_EQ(*name, "x");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags("prog", "test");
  int64_t* n = flags.Int64("n", 0, "count");
  std::string* s = flags.String("s", "", "str");
  const char* argv[] = {"prog", "--n=17", "--s=hello"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(*n, 17);
  EXPECT_EQ(*s, "hello");
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet flags("prog", "test");
  double* d = flags.Double("d", 0, "val");
  const char* argv[] = {"prog", "--d", "2.75"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_DOUBLE_EQ(*d, 2.75);
}

TEST(FlagsTest, BareBoolEnables) {
  FlagSet flags("prog", "test");
  bool* quick = flags.Bool("quick", false, "quick mode");
  const char* argv[] = {"prog", "--quick"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(*quick);
}

TEST(FlagsTest, BoolExplicitValues) {
  FlagSet flags("prog", "test");
  bool* a = flags.Bool("a", false, "a");
  bool* b = flags.Bool("b", true, "b");
  const char* argv[] = {"prog", "--a=true", "--b=false"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
}

TEST(FlagsTest, PositionalArgsCollected) {
  FlagSet flags("prog", "test");
  flags.Int64("n", 0, "count");
  const char* argv[] = {"prog", "input.txt", "--n=3", "output.txt"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagSet flags("prog", "test");
  const char* argv[] = {"prog", "--nope=1"};
  const Status st = flags.Parse(2, argv);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntIsError) {
  FlagSet flags("prog", "test");
  flags.Int64("n", 0, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, BadBoolIsError) {
  FlagSet flags("prog", "test");
  flags.Bool("b", false, "b");
  const char* argv[] = {"prog", "--b=maybe"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, MissingValueIsError) {
  FlagSet flags("prog", "test");
  flags.Int64("n", 0, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, HelpRequested) {
  FlagSet flags("prog", "test");
  flags.Int64("n", 5, "count");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.help_requested());
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("count"), std::string::npos);
}

}  // namespace
}  // namespace ddsgraph
