#include "flow/dds_network.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dds/density.h"
#include "flow/dinic.h"
#include "flow/min_cut.h"
#include "graph/generators.h"

namespace ddsgraph {
namespace {

std::vector<VertexId> AllVertices(const Digraph& g) {
  std::vector<VertexId> all(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) all[v] = v;
  return all;
}

// Brute-force max over all pairs (S,T) of E(S,T) - (g/2)(|S|/sqrt(a) +
// sqrt(a)|T|); the min cut of N(G,a,g) must equal m' - that max.
double BruteLinearizedMax(const Digraph& g, double sqrt_a, double guess) {
  const uint32_t n = g.NumVertices();
  double best = 0;  // empty pair scores 0
  for (uint32_t s_mask = 0; s_mask < (1u << n); ++s_mask) {
    for (uint32_t t_mask = 0; t_mask < (1u << n); ++t_mask) {
      int64_t edges = 0;
      int s_size = 0;
      int t_size = 0;
      for (VertexId u = 0; u < n; ++u) {
        if (s_mask & (1u << u)) ++s_size;
        if (t_mask & (1u << u)) ++t_size;
      }
      for (VertexId u = 0; u < n; ++u) {
        if (!(s_mask & (1u << u))) continue;
        for (VertexId v : g.OutNeighbors(u)) {
          if (t_mask & (1u << v)) ++edges;
        }
      }
      const double value =
          static_cast<double>(edges) -
          guess / 2.0 * (s_size / sqrt_a + sqrt_a * t_size);
      best = std::max(best, value);
    }
  }
  return best;
}

TEST(DdsNetworkTest, LayoutAndPairEdges) {
  const Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {3, 1}});
  const DdsNetwork net =
      BuildDdsNetwork(g, AllVertices(g), AllVertices(g), 1.0, 0.5);
  EXPECT_EQ(net.num_pair_edges, 3);
  // A side: vertices with outgoing pair edges: 0 and 3. B side: 1 and 2.
  EXPECT_EQ(net.a_vertices.size(), 2u);
  EXPECT_EQ(net.b_vertices.size(), 2u);
  EXPECT_EQ(net.NumNodes(), 2u + 4u);
  EXPECT_EQ(net.source, 0u);
  EXPECT_EQ(net.sink, 1u);
}

TEST(DdsNetworkTest, CandidateRestrictionFiltersEdges) {
  const Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {3, 1}});
  const DdsNetwork net = BuildDdsNetwork(g, {0}, {1}, 1.0, 0.5);
  EXPECT_EQ(net.num_pair_edges, 1);
  EXPECT_EQ(net.a_vertices.size(), 1u);
  EXPECT_EQ(net.b_vertices.size(), 1u);
}

TEST(DdsNetworkTest, MinCutMatchesBruteForceLinearizedObjective) {
  // Random small graphs, several (a, g) combinations.
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const Digraph g = UniformDigraph(7, 18, seed);
    for (double a : {0.5, 1.0, 2.0}) {
      for (double guess : {0.3, 0.9, 1.7, 3.0}) {
        const double sqrt_a = std::sqrt(a);
        DdsNetwork net =
            BuildDdsNetwork(g, AllVertices(g), AllVertices(g), sqrt_a, guess);
        Dinic dinic(&net.net);
        const double flow = dinic.Solve(net.source, net.sink);
        const double brute = BruteLinearizedMax(g, sqrt_a, guess);
        EXPECT_NEAR(static_cast<double>(net.num_pair_edges) - flow, brute,
                    1e-6)
            << "seed " << seed << " a " << a << " g " << guess;
      }
    }
  }
}

TEST(DdsNetworkTest, ExtractedPairMatchesCutSemantics) {
  // Planted biclique: at its own ratio and a guess below its density, the
  // extracted pair must contain the biclique.
  const Digraph g = BicliqueWithNoise(12, 3, 3, 6, 7);
  const double sqrt_a = 1.0;  // |S| = |T| = 3
  const double guess = 2.0;   // biclique linearized density = 3 > 2
  DdsNetwork net =
      BuildDdsNetwork(g, AllVertices(g), AllVertices(g), sqrt_a, guess);
  Dinic dinic(&net.net);
  dinic.Solve(net.source, net.sink);
  const auto side = SourceSideOfMinCut(net.net, net.source);
  const ExtractedPair pair = ExtractPairFromCut(net, side);
  ASSERT_FALSE(pair.s.empty());
  ASSERT_FALSE(pair.t.empty());
  const DdsPair dds_pair{pair.s, pair.t};
  EXPECT_GT(LinearizedDensity(g, dds_pair, sqrt_a), guess);
  for (VertexId u = 0; u < 3; ++u) {
    EXPECT_NE(std::find(pair.s.begin(), pair.s.end(), u), pair.s.end())
        << "biclique source " << u << " missing from cut";
  }
}

TEST(DdsNetworkTest, InfeasibleGuessYieldsTrivialCut) {
  const Digraph g = Digraph::FromEdges(3, {{0, 1}, {1, 2}});
  // Densest possible value is 1 (single edge); guess far above.
  DdsNetwork net =
      BuildDdsNetwork(g, AllVertices(g), AllVertices(g), 1.0, 10.0);
  Dinic dinic(&net.net);
  const double flow = dinic.Solve(net.source, net.sink);
  EXPECT_NEAR(flow, static_cast<double>(net.num_pair_edges), 1e-9);
  const auto side = SourceSideOfMinCut(net.net, net.source);
  const ExtractedPair pair = ExtractPairFromCut(net, side);
  const DdsPair dds_pair{pair.s, pair.t};
  EXPECT_LE(LinearizedDensity(g, dds_pair, 1.0), 10.0);
}

}  // namespace
}  // namespace ddsgraph
