#include <cmath>

#include <gtest/gtest.h>

#include "core/core_approx.h"
#include "dds/core_exact.h"
#include "dds/peel_approx.h"
#include "graph/generators.h"

namespace ddsgraph {
namespace {

// Medium-scale invariants pinned against each other (no absolute golden
// values: all quantities are recomputed and cross-validated at runtime, so
// the suite stays robust to generator-irrelevant changes while still
// catching algorithmic regressions).

TEST(RegressionTest, MediumRmatAllSolversConsistent) {
  const Digraph g = RmatDigraph(9, 6000, 42);
  const DdsSolution exact = CoreExact(g);
  const CoreApproxResult core_approx = CoreApprox(g);
  const DdsSolution peel = PeelApprox(g);

  // Exactness dominates both approximations.
  EXPECT_GE(exact.density + 1e-6, core_approx.density);
  EXPECT_GE(exact.density + 1e-6, peel.density);
  // Certified brackets hold.
  EXPECT_GE(core_approx.density * 2.0 + 1e-6, exact.density);
  EXPECT_LE(exact.density, core_approx.upper_bound + 1e-6);
  // The paper's empirical claim: actual approximation quality is far above
  // the 1/2 guarantee on skewed graphs.
  EXPECT_GE(core_approx.density / exact.density, 0.75);
}

TEST(RegressionTest, MediumUniformGraphConsistent) {
  const Digraph g = UniformDigraph(400, 3000, 7);
  const DdsSolution exact = CoreExact(g);
  const CoreApproxResult approx = CoreApprox(g);
  EXPECT_GE(exact.density + 1e-6, approx.density);
  EXPECT_GE(approx.density * 2.0 + 1e-6, exact.density);
  // Warm start caps the ratio probes: with pruning, the D&C explores a
  // small fraction of the ~n^2/3 realizable ratio values.
  EXPECT_LT(exact.stats.ratios_probed, 200);
}

TEST(RegressionTest, PlantedBlockRecoveredAtScale) {
  const PlantedDigraph planted =
      PlantedDenseBlock(2000, 8000, 20, 30, 0.95, 123);
  const DdsSolution exact = CoreExact(planted.graph);
  const double planted_density = DirectedDensity(
      planted.graph, planted.planted_s, planted.planted_t);
  EXPECT_GE(exact.density + 1e-6, planted_density);
  // The found pair must be essentially the planted block: ratios match and
  // density is within a whisker (background can add a vertex or two).
  EXPECT_NEAR(exact.density, planted_density, 0.15 * planted_density);
}

TEST(RegressionTest, CoreExactBeatsDcExactOnWork) {
  const Digraph g = RmatDigraph(8, 3000, 11);
  const DdsSolution dc = DcExact(g);
  const DdsSolution core = CoreExact(g);
  EXPECT_NEAR(dc.density, core.density, 1e-6);
  // Core pruning must shrink the peak network size substantially on a
  // power-law graph — the mechanism behind the paper's speedups (E8).
  EXPECT_LT(core.stats.max_network_nodes, dc.stats.max_network_nodes / 2);
}

}  // namespace
}  // namespace ddsgraph
