#include "util/status.h"

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad ratio");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad ratio");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad ratio");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(Status::Internal("broken"));
  EXPECT_DEATH({ (void)result.value(); }, "INTERNAL: broken");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::OutOfRange("too big"); };
  auto wrapper = [&]() -> Status {
    RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kOutOfRange);

  auto succeeds = [] { return Status::Ok(); };
  auto wrapper_ok = [&]() -> Status {
    RETURN_IF_ERROR(succeeds());
    return Status::Ok();
  };
  EXPECT_TRUE(wrapper_ok().ok());
}

}  // namespace
}  // namespace ddsgraph
