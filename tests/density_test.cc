#include "dds/density.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

Digraph SmallGraph() {
  // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
  return Digraph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}, {2, 0}});
}

TEST(CountPairEdgesTest, Basic) {
  const Digraph g = SmallGraph();
  EXPECT_EQ(CountPairEdges(g, {0}, {1, 2}), 2);
  EXPECT_EQ(CountPairEdges(g, {0, 1}, {2}), 2);
  EXPECT_EQ(CountPairEdges(g, {2}, {0}), 1);
  EXPECT_EQ(CountPairEdges(g, {1}, {0}), 0);
}

TEST(CountPairEdgesTest, EmptySidesGiveZero) {
  const Digraph g = SmallGraph();
  EXPECT_EQ(CountPairEdges(g, {}, {0, 1, 2}), 0);
  EXPECT_EQ(CountPairEdges(g, {0}, {}), 0);
}

TEST(CountPairEdgesTest, OverlappingSides) {
  // S = T = V counts all edges.
  const Digraph g = SmallGraph();
  EXPECT_EQ(CountPairEdges(g, {0, 1, 2}, {0, 1, 2}), 4);
}

TEST(DirectedDensityTest, KnownValues) {
  const Digraph g = SmallGraph();
  EXPECT_NEAR(DirectedDensity(g, {0}, {1, 2}), 2.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(DirectedDensity(g, {0, 1, 2}, {0, 1, 2}), 4.0 / 3.0, 1e-12);
  EXPECT_EQ(DirectedDensity(g, {}, {0}), 0.0);
}

TEST(DirectedDensityTest, BicliqueDensity) {
  const Digraph g = BicliqueWithNoise(7, 3, 4, 0, 1);
  std::vector<VertexId> s{0, 1, 2};
  std::vector<VertexId> t{3, 4, 5, 6};
  EXPECT_NEAR(DirectedDensity(g, s, t), 12.0 / std::sqrt(12.0), 1e-12);
}

TEST(LinearizedDensityTest, EqualsTrueDensityAtOwnRatio) {
  const Digraph g = SmallGraph();
  const DdsPair pair{{0}, {1, 2}};  // ratio 1/2
  const double sqrt_a = std::sqrt(0.5);
  EXPECT_NEAR(LinearizedDensity(g, pair, sqrt_a),
              DirectedDensity(g, pair), 1e-12);
}

TEST(LinearizedDensityTest, NeverExceedsTrueDensity) {
  // AM-GM: linearized <= true density for every ratio guess.
  Rng rng(5);
  const Digraph g = UniformDigraph(20, 80, 3);
  for (int trial = 0; trial < 50; ++trial) {
    DdsPair pair;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (rng.NextBool(0.4)) pair.s.push_back(v);
      if (rng.NextBool(0.4)) pair.t.push_back(v);
    }
    if (pair.Empty()) continue;
    for (double a : {0.2, 0.7, 1.0, 1.9, 5.0}) {
      EXPECT_LE(LinearizedDensity(g, pair, std::sqrt(a)),
                DirectedDensity(g, pair) + 1e-12);
    }
  }
}

TEST(RatioMismatchPhiTest, Properties) {
  EXPECT_DOUBLE_EQ(RatioMismatchPhi(1.0), 1.0);
  EXPECT_NEAR(RatioMismatchPhi(4.0), (2.0 + 0.5) / 2.0, 1e-12);
  // Symmetry phi(r) == phi(1/r).
  for (double r : {0.1, 0.5, 2.0, 7.3}) {
    EXPECT_NEAR(RatioMismatchPhi(r), RatioMismatchPhi(1.0 / r), 1e-12);
    EXPECT_GE(RatioMismatchPhi(r), 1.0);
  }
}

TEST(NormalizePairTest, SortsAndDeduplicates) {
  const Digraph g = SmallGraph();
  DdsPair pair{{2, 0, 2}, {1, 1}};
  ASSERT_TRUE(NormalizePair(g, &pair));
  EXPECT_EQ(pair.s, (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(pair.t, (std::vector<VertexId>{1}));
}

TEST(NormalizePairTest, RejectsOutOfRange) {
  const Digraph g = SmallGraph();
  DdsPair pair{{5}, {0}};
  EXPECT_FALSE(NormalizePair(g, &pair));
}

}  // namespace
}  // namespace ddsgraph
