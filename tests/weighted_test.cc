#include "dds/weighted_dds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/core_approx.h"
#include "core/xy_core.h"
#include "core/xy_core_decomposition.h"
#include "dds/core_exact.h"
#include "dds/lp_exact.h"
#include "dds/naive_exact.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

// Random weighted graph with weights in [1, max_w], via the seeded
// weighted generator (graph/generators.h).
WeightedDigraph RandomWeighted(uint32_t n, int64_t arcs, int64_t max_w,
                               uint64_t seed) {
  WeightOptions options;
  options.max_weight = max_w;
  return UniformWeightedDigraph(n, arcs, seed, options);
}

TEST(WeightedDensityTest, MatchesManualComputation) {
  const WeightedDigraph g =
      WeightedDigraph::FromEdges(3, {{0, 1, 3}, {0, 2, 5}, {1, 2, 2}});
  EXPECT_EQ(WeightedPairWeight(g, {0}, {1, 2}), 8);
  EXPECT_NEAR(WeightedDensity(g, {0}, {1, 2}), 8.0 / std::sqrt(2.0), 1e-12);
  EXPECT_EQ(WeightedDensity(g, {}, {1}), 0.0);
}

TEST(WeightedXyCoreTest, UnitWeightsMatchUnweightedCore) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Digraph base = UniformDigraph(30, 140, seed);
    const WeightedDigraph g = WeightedDigraph::FromDigraph(base);
    for (int64_t x = 0; x <= 4; ++x) {
      for (int64_t y = 0; y <= 4; ++y) {
        const XyCore weighted = ComputeXyCore(g, x, y);
        const XyCore plain = ComputeXyCore(base, x, y);
        EXPECT_EQ(weighted.s, plain.s) << "x=" << x << " y=" << y;
        EXPECT_EQ(weighted.t, plain.t) << "x=" << x << " y=" << y;
      }
    }
  }
}

TEST(WeightedXyCoreTest, WeightsActAsMultiplicities) {
  // One edge of weight 5: S side has weighted out-degree 5.
  const WeightedDigraph g = WeightedDigraph::FromEdges(2, {{0, 1, 5}});
  EXPECT_FALSE(ComputeXyCore(g, 5, 5).Empty());
  EXPECT_TRUE(ComputeXyCore(g, 6, 1).Empty());
  EXPECT_TRUE(ComputeXyCore(g, 1, 6).Empty());
  EXPECT_TRUE(IsValidXyCore(g, ComputeXyCore(g, 5, 5), 5, 5));
}

TEST(WeightedMaxYForXTest, UnitWeightsMatchUnweighted) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Digraph base = UniformDigraph(40, 220, seed);
    const WeightedDigraph g = WeightedDigraph::FromDigraph(base);
    for (int64_t x = 1; x <= 6; ++x) {
      EXPECT_EQ(MaxYForX(g, x), MaxYForX(base, x))
          << "seed " << seed << " x " << x;
    }
  }
}

TEST(WeightedMaxYForXTest, MatchesBruteForceWithWeights) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const WeightedDigraph g = RandomWeighted(20, 70, 4, seed);
    for (int64_t x = 1; x <= 8; ++x) {
      int64_t brute = 0;
      for (int64_t y = 1; y <= g.MaxWeightedInDegree(); ++y) {
        if (ComputeXyCore(g, x, y).Empty()) break;
        brute = y;
      }
      EXPECT_EQ(MaxYForX(g, x), brute)
          << "seed " << seed << " x " << x;
    }
  }
}

TEST(WeightedCoreApproxTest, UnitWeightsMatchUnweighted) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Digraph base = RmatDigraph(6, 300, seed);
    const WeightedDigraph g = WeightedDigraph::FromDigraph(base);
    const WeightedCoreApproxResult weighted = WeightedCoreApprox(g);
    const CoreApproxResult plain = CoreApprox(base);
    EXPECT_EQ(weighted.best_x * weighted.best_y,
              plain.best_x * plain.best_y)
        << "seed " << seed;
    EXPECT_NEAR(weighted.density, plain.density, 1e-12);
  }
}

TEST(WeightedNaiveExactTest, SimpleWeightedStar) {
  // 0 -> 1 (w 9), 0 -> 2 (w 1): best is ({0},{1}) with rho 9, beating
  // ({0},{1,2}) with 10/sqrt(2) ~ 7.07.
  const WeightedDigraph g =
      WeightedDigraph::FromEdges(3, {{0, 1, 9}, {0, 2, 1}});
  const DdsSolution sol = WeightedNaiveExact(g);
  EXPECT_NEAR(sol.density, 9.0, 1e-12);
  EXPECT_EQ(sol.pair.t, (std::vector<VertexId>{1}));
}

TEST(WeightedNaiveExactTest, UnitWeightsMatchUnweighted) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Digraph base = UniformDigraph(7, 20, seed);
    const WeightedDigraph g = WeightedDigraph::FromDigraph(base);
    EXPECT_NEAR(WeightedNaiveExact(g).density, NaiveExact(base).density,
                1e-12)
        << "seed " << seed;
  }
}

// The headline cross-checks for the weighted extension.
class WeightedExactTest : public ::testing::TestWithParam<int> {};

TEST_P(WeightedExactTest, CoreExactMatchesNaive) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const WeightedDigraph g = RandomWeighted(8, 26, 5, seed);
  if (g.TotalWeight() == 0) return;
  const DdsSolution naive = WeightedNaiveExact(g);
  const DdsSolution core = WeightedCoreExact(g);
  EXPECT_NEAR(core.density, naive.density, 1e-6) << "seed " << seed;
  EXPECT_NEAR(core.density, WeightedDensity(g, core.pair.s, core.pair.t),
              1e-12);
}

TEST_P(WeightedExactTest, ApproxGuaranteeHolds) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const WeightedDigraph g = RandomWeighted(9, 30, 6, seed + 100);
  if (g.TotalWeight() == 0) return;
  const DdsSolution naive = WeightedNaiveExact(g);
  const WeightedCoreApproxResult approx = WeightedCoreApprox(g);
  ASSERT_FALSE(approx.Empty());
  EXPECT_GE(approx.density * 2.0 + 1e-9, naive.density) << "seed " << seed;
  EXPECT_LE(naive.density, approx.upper_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedExactTest, ::testing::Range(0, 20));

// The acceptance bar of the weight-policy redesign: on an all-weights-1
// graph the weighted instantiation of the exact engine runs the *same
// code* on the same numbers, so the whole solve — pair, density, bounds
// and every trajectory counter — is bit-identical to the unweighted
// instantiation, across option presets.
TEST(WeightedExactTest, UnitWeightsBitIdenticalToUnweightedEngine) {
  std::vector<ExactOptions> presets;
  presets.push_back(ExactOptions{});  // CoreExact
  ExactOptions dc;
  dc.core_pruning = false;
  dc.refine_cores_in_probe = false;
  dc.approx_warm_start = false;
  presets.push_back(dc);  // DcExact
  ExactOptions fresh;
  fresh.incremental_probe = false;
  fresh.record_network_sizes = true;
  presets.push_back(fresh);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Digraph base = UniformDigraph(30, 150, seed);
    const WeightedDigraph g = WeightedDigraph::FromDigraph(base);
    for (size_t p = 0; p < presets.size(); ++p) {
      const DdsSolution weighted = SolveExactDds(g, presets[p]);
      const DdsSolution plain = SolveExactDds(base, presets[p]);
      EXPECT_EQ(weighted.density, plain.density)
          << "seed " << seed << " preset " << p;
      EXPECT_EQ(weighted.pair.s, plain.pair.s);
      EXPECT_EQ(weighted.pair.t, plain.pair.t);
      EXPECT_EQ(weighted.pair_edges, plain.pair_edges);
      EXPECT_EQ(weighted.lower_bound, plain.lower_bound);
      EXPECT_EQ(weighted.upper_bound, plain.upper_bound);
      EXPECT_EQ(weighted.stats.ratios_probed, plain.stats.ratios_probed);
      EXPECT_EQ(weighted.stats.binary_search_iters,
                plain.stats.binary_search_iters);
      EXPECT_EQ(weighted.stats.flow_networks_built,
                plain.stats.flow_networks_built);
      EXPECT_EQ(weighted.stats.flow_networks_reused,
                plain.stats.flow_networks_reused);
      EXPECT_EQ(weighted.stats.intervals_pruned,
                plain.stats.intervals_pruned);
      EXPECT_EQ(weighted.stats.network_sizes, plain.stats.network_sizes);
    }
  }
}

// Weighted solves honor every ExactOptions flag now; all 32 combinations
// of the five booleans must agree with the exhaustive certifier. (The
// non-D&C combinations enumerate all O(n^2) ratios — n is kept tiny.)
TEST(WeightedExactTest, AllExactOptionCombinationsAgreeWithNaive) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const WeightedDigraph g = RandomWeighted(8, 26, 5, seed + 500);
    if (g.TotalWeight() == 0) continue;
    const DdsSolution naive = WeightedNaiveExact(g);
    for (int mask = 0; mask < 32; ++mask) {
      ExactOptions options;
      options.divide_and_conquer = (mask & 1) != 0;
      options.core_pruning = (mask & 2) != 0;
      options.refine_cores_in_probe = (mask & 4) != 0;
      options.approx_warm_start = (mask & 8) != 0;
      options.incremental_probe = (mask & 16) != 0;
      const DdsSolution sol = SolveExactDds(g, options);
      EXPECT_NEAR(sol.density, naive.density, 1e-6)
          << "seed " << seed << " mask " << mask;
      EXPECT_NEAR(sol.density, WeightedDensity(g, sol.pair.s, sol.pair.t),
                  1e-12)
          << "seed " << seed << " mask " << mask;
    }
  }
}

TEST(WeightedExactTest, ScalingWeightsScalesDensityLinearly) {
  const WeightedDigraph g = RandomWeighted(10, 40, 3, 99);
  std::vector<WeightedEdge> scaled = g.EdgeList();
  for (WeightedEdge& e : scaled) e.weight *= 7;
  const WeightedDigraph g7 =
      WeightedDigraph::FromEdges(g.NumVertices(), std::move(scaled));
  const DdsSolution a = WeightedCoreExact(g);
  const DdsSolution b = WeightedCoreExact(g7);
  EXPECT_NEAR(b.density, 7.0 * a.density, 1e-6);
}

// The LP baseline is weight-generic too (weights are objective
// coefficients): it must certify the weighted flow engine independently.
TEST(WeightedExactTest, LpExactMatchesNaiveOnWeightedGraphs) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const WeightedDigraph g = RandomWeighted(7, 20, 5, seed + 300);
    if (g.TotalWeight() == 0) continue;
    const DdsSolution naive = WeightedNaiveExact(g);
    const DdsSolution lp = LpExact(g);
    EXPECT_NEAR(lp.density, naive.density, 1e-6) << "seed " << seed;
    // LP duality: the best LP value upper-bounds (and here matches) the
    // optimum under the weighted objective.
    EXPECT_GE(lp.upper_bound + 1e-6, naive.density) << "seed " << seed;
    EXPECT_NEAR(lp.upper_bound, naive.density, 1e-4) << "seed " << seed;
  }
}

TEST(WeightedExactTest, HeavyEdgeDominatesManyLightOnes) {
  // A 3x3 unit block (rho 3) against a single edge of weight 10.
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 3; v < 6; ++v) edges.push_back({u, v, 1});
  }
  edges.push_back({6, 7, 10});
  const WeightedDigraph g = WeightedDigraph::FromEdges(8, edges);
  const DdsSolution sol = WeightedCoreExact(g);
  EXPECT_NEAR(sol.density, 10.0, 1e-6);
  EXPECT_EQ(sol.pair.s, (std::vector<VertexId>{6}));
  EXPECT_EQ(sol.pair.t, (std::vector<VertexId>{7}));
}

}  // namespace
}  // namespace ddsgraph
