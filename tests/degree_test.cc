#include "graph/degree.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ddsgraph {
namespace {

TEST(GiniTest, UniformSampleIsZero) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(GiniTest, SingleNonZeroIsMaximallySkewed) {
  // Gini of (0,...,0,1) with k entries approaches (k-1)/k.
  EXPECT_NEAR(GiniCoefficient({0, 0, 0, 1}), 0.75, 1e-12);
}

TEST(GiniTest, EmptyAndZeroTotals) {
  EXPECT_EQ(GiniCoefficient({}), 0.0);
  EXPECT_EQ(GiniCoefficient({0, 0}), 0.0);
}

TEST(GiniTest, KnownTwoPointValue) {
  // (1, 3): gini = (2*1-3)*1 + (2*2-3)*3 over 2*4 = (-1 + 3)/8 = 0.25.
  EXPECT_NEAR(GiniCoefficient({1, 3}), 0.25, 1e-12);
}

TEST(DegreeStatsTest, CountsBasicQuantities) {
  const Digraph g =
      Digraph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 4);
  EXPECT_EQ(stats.max_out_degree, 3);
  EXPECT_EQ(stats.max_in_degree, 2);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 1.0);
  EXPECT_EQ(stats.num_weak_components, 1u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(DegreeStatsTest, PowerLawIsMoreSkewedThanUniform) {
  const Digraph uniform = UniformDigraph(1024, 8192, 1);
  const Digraph rmat = RmatDigraph(10, 8192, 1);
  const DegreeStats u = ComputeDegreeStats(uniform);
  const DegreeStats r = ComputeDegreeStats(rmat);
  // The R-MAT out-degree distribution must be visibly more skewed — this is
  // the property that makes the synthetic datasets stand in for the paper's
  // social/web graphs.
  EXPECT_GT(r.out_degree_gini, u.out_degree_gini + 0.1);
  EXPECT_GT(r.max_out_degree, u.max_out_degree);
}

}  // namespace
}  // namespace ddsgraph
