// The durability primitives of DESIGN.md §16 in isolation: CRC32, the
// WAL record grammar (append / replay round trips, empty batches), the
// torn-tail contract — byte-truncate and bit-flip the committed file at
// every offset of the last record and recover exactly the acked prefix,
// never crash — and the snapshot writer's atomicity + corruption checks.

#include "serve/wal.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/edge_stream.h"
#include "util/failpoint.h"

namespace ddsgraph {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// A per-test scratch path. Any leftover from a previous run of the same
// binary is removed — several tests append to the file they name, and a
// stale healed WAL would make their version sequences non-monotone.
std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DeactivateAll(); }
};

TEST_F(WalTest, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check vector (zlib polynomial).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Seeding chains: crc(ab) == crc(b, seed=crc(a)).
  const uint32_t whole = Crc32("durable", 7);
  EXPECT_EQ(Crc32("able", 4, Crc32("dur", 3)), whole);
}

TEST_F(WalTest, FsyncPolicyVocabulary) {
  EXPECT_EQ(ParseFsyncPolicy("always").value(), FsyncPolicy::kAlways);
  EXPECT_EQ(ParseFsyncPolicy("interval").value(), FsyncPolicy::kInterval);
  EXPECT_EQ(ParseFsyncPolicy("never").value(), FsyncPolicy::kNever);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kAlways), "always");
}

TEST_F(WalTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("roundtrip.wal");
  WalReplay replay;
  auto opened = WriteAheadLog::Open(path, WalOptions{}, &replay);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.torn_tail);

  std::vector<EdgeBatch> batches = {
      {EdgeOp::Insert(1, 2), EdgeOp::Insert(2, 3, 5)},
      {EdgeOp::Delete(1, 2)},
      {},  // a batch of nothing but no-ops formats to ""
      {EdgeOp::Insert(7, 8), EdgeOp::Delete(2, 3)},
  };
  auto& wal = opened.value();
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(wal->Append(static_cast<int64_t>(i + 1), batches[i]).ok());
  }
  EXPECT_EQ(wal->records(), 4);
  wal.reset();  // close

  const Result<WalReplay> read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().records.size(), 4u);
  EXPECT_FALSE(read.value().torn_tail);
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(read.value().records[i].version,
              static_cast<int64_t>(i + 1));
    EXPECT_EQ(FormatEdgeOps(read.value().records[i].batch),
              FormatEdgeOps(batches[i]))
        << "record " << i;
  }

  // Reopening replays the same prefix and accepts further appends.
  WalReplay again;
  auto reopened = WriteAheadLog::Open(path, WalOptions{}, &again);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(again.records.size(), 4u);
  ASSERT_TRUE(reopened.value()->Append(5, {EdgeOp::Insert(9, 1)}).ok());
  reopened.value().reset();
  EXPECT_EQ(ReadWal(path).value().records.size(), 5u);
}

TEST_F(WalTest, MissingFileIsAnEmptyReplay) {
  const Result<WalReplay> read = ReadWal(TempPath("does_not_exist.wal"));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_FALSE(read.value().torn_tail);
}

TEST_F(WalTest, ResetTruncatesBehindACheckpoint) {
  const std::string path = TempPath("reset.wal");
  WalReplay replay;
  auto wal = WriteAheadLog::Open(path, WalOptions{}, &replay).value();
  ASSERT_TRUE(wal->Append(1, {EdgeOp::Insert(1, 2)}).ok());
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->records(), 0);
  // Post-checkpoint appends resume at the snapshot's successor version.
  ASSERT_TRUE(wal->Append(2, {EdgeOp::Insert(3, 4)}).ok());
  wal.reset();
  const WalReplay read = ReadWal(path).value();
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0].version, 2);
}

// The recovery invariant, mechanically: truncate the committed file to
// *every* byte length inside the last record — each prefix must replay
// exactly the first two records, flag the tear, and stay appendable
// after Open truncates the debris.
TEST_F(WalTest, ByteTruncationAtEveryOffsetRecoversTheAckedPrefix) {
  const std::string path = TempPath("torn_truncate.wal");
  WalReplay replay;
  auto wal = WriteAheadLog::Open(path, WalOptions{}, &replay).value();
  ASSERT_TRUE(wal->Append(1, {EdgeOp::Insert(1, 2)}).ok());
  ASSERT_TRUE(wal->Append(2, {EdgeOp::Insert(2, 3), EdgeOp::Delete(1, 2)}).ok());
  const int64_t prefix_bytes = wal->bytes();
  ASSERT_TRUE(
      wal->Append(3, {EdgeOp::Insert(4, 5, 7), EdgeOp::Insert(5, 6)}).ok());
  const int64_t full_bytes = wal->bytes();
  wal.reset();
  const std::string committed = ReadFileOrDie(path);
  ASSERT_EQ(static_cast<int64_t>(committed.size()), full_bytes);

  const std::string torn = TempPath("torn_truncate_copy.wal");
  for (int64_t len = prefix_bytes; len < full_bytes; ++len) {
    WriteFileOrDie(torn, committed.substr(0, static_cast<size_t>(len)));
    const Result<WalReplay> read = ReadWal(torn);
    ASSERT_TRUE(read.ok()) << "len " << len << ": "
                           << read.status().ToString();
    EXPECT_EQ(read.value().records.size(), 2u) << "len " << len;
    EXPECT_EQ(read.value().valid_bytes, prefix_bytes) << "len " << len;
    EXPECT_EQ(read.value().torn_tail, len != prefix_bytes)
        << "len " << len;

    // Open must truncate the tear and leave an appendable log.
    WalReplay reopened;
    auto healed = WriteAheadLog::Open(torn, WalOptions{}, &reopened);
    ASSERT_TRUE(healed.ok()) << "len " << len;
    EXPECT_EQ(reopened.records.size(), 2u);
    ASSERT_TRUE(healed.value()->Append(3, {EdgeOp::Insert(8, 9)}).ok());
    healed.value().reset();
    EXPECT_EQ(ReadWal(torn).value().records.size(), 3u) << "len " << len;
  }
}

// Same invariant against corruption-in-place: flip every byte of the
// last record in turn. Whatever the flip hits — length, CRC, version or
// payload — replay must surface exactly the two intact records.
TEST_F(WalTest, BitFlipAtEveryOffsetOfTheLastRecordRecoversThePrefix) {
  const std::string path = TempPath("torn_flip.wal");
  WalReplay replay;
  auto wal = WriteAheadLog::Open(path, WalOptions{}, &replay).value();
  ASSERT_TRUE(wal->Append(1, {EdgeOp::Insert(1, 2)}).ok());
  ASSERT_TRUE(wal->Append(2, {EdgeOp::Insert(2, 3, 4)}).ok());
  const int64_t prefix_bytes = wal->bytes();
  ASSERT_TRUE(wal->Append(3, {EdgeOp::Insert(5, 6), EdgeOp::Delete(2, 3)}).ok());
  wal.reset();
  const std::string committed = ReadFileOrDie(path);

  const std::string flipped = TempPath("torn_flip_copy.wal");
  for (size_t at = static_cast<size_t>(prefix_bytes);
       at < committed.size(); ++at) {
    std::string mutated = committed;
    mutated[at] = static_cast<char>(mutated[at] ^ 0xFF);
    WriteFileOrDie(flipped, mutated);
    const Result<WalReplay> read = ReadWal(flipped);
    ASSERT_TRUE(read.ok()) << "offset " << at << ": "
                           << read.status().ToString();
    EXPECT_EQ(read.value().records.size(), 2u) << "offset " << at;
    EXPECT_TRUE(read.value().torn_tail) << "offset " << at;
    EXPECT_EQ(read.value().valid_bytes, prefix_bytes) << "offset " << at;
  }
}

TEST_F(WalTest, FailedAppendLeavesTheLogExactlyAsItWas) {
  const std::string path = TempPath("failed_append.wal");
  WalReplay replay;
  auto wal = WriteAheadLog::Open(path, WalOptions{}, &replay).value();
  ASSERT_TRUE(wal->Append(1, {EdgeOp::Insert(1, 2)}).ok());
  const int64_t before = wal->bytes();

  // The injected tear: Append writes the frame in two halves with this
  // point between them, then must restore the file to `before` bytes.
  Failpoints::Activate("wal:mid_append", Failpoints::Action::kError);
  const Status failed = wal->Append(2, {EdgeOp::Insert(3, 4)});
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(wal->bytes(), before);
  EXPECT_EQ(wal->records(), 1);
  EXPECT_GE(wal->sync_errors(), 1);

  // Disk agrees: one record, no debris — so a retry of the same version
  // is exactly what recovery would expect.
  EXPECT_EQ(ReadWal(path).value().records.size(), 1u);
  ASSERT_TRUE(wal->Append(2, {EdgeOp::Insert(3, 4)}).ok());
  wal.reset();
  const WalReplay read = ReadWal(path).value();
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[1].version, 2);
}

TEST_F(WalTest, FsyncPolicyGovernsSyncCounts) {
  WalReplay replay;
  auto always =
      WriteAheadLog::Open(TempPath("always.wal"), WalOptions{}, &replay)
          .value();
  const int64_t base = always->fsyncs();
  ASSERT_TRUE(always->Append(1, {EdgeOp::Insert(1, 2)}).ok());
  ASSERT_TRUE(always->Append(2, {EdgeOp::Insert(2, 3)}).ok());
  // kAlways: one fsync per append — the ack-implies-durable policy.
  EXPECT_EQ(always->fsyncs(), base + 2);

  WalOptions lazy;
  lazy.fsync = FsyncPolicy::kInterval;
  lazy.fsync_interval_s = 3600;  // never within this test
  const std::string lazy_path = TempPath("interval.wal");
  auto interval =
      WriteAheadLog::Open(lazy_path, lazy, &replay).value();
  const int64_t ibase = interval->fsyncs();
  ASSERT_TRUE(interval->Append(1, {EdgeOp::Insert(1, 2)}).ok());
  ASSERT_TRUE(interval->Append(2, {EdgeOp::Insert(2, 3)}).ok());
  EXPECT_EQ(interval->fsyncs(), ibase);
  // The records are still crash-consistent on disk (write-through to the
  // page cache), just not durable.
  interval.reset();
  EXPECT_EQ(ReadWal(lazy_path).value().records.size(), 2u);
}

TEST_F(WalTest, InjectedFsyncFailureCountsAndFailsTheAppend) {
  WalReplay replay;
  auto wal = WriteAheadLog::Open(TempPath("fsync_fail.wal"), WalOptions{},
                                 &replay)
                 .value();
  Failpoints::Activate("wal:fsync_error", Failpoints::Action::kError);
  const Status failed = wal->Append(1, {EdgeOp::Insert(1, 2)});
  EXPECT_FALSE(failed.ok());
  EXPECT_GE(wal->sync_errors(), 1);
}

// The regression this guards: a record that reached the file but whose
// append still failed (fsync error, injected fault after the write)
// must not survive. The entry never bumps its version on a failed
// apply, so the retry reuses the version number — a leftover record
// would make the log carry it twice, and replay (correctly) refuses
// non-increasing versions, turning one transient EIO into a directory
// that can never be recovered. Each post-write failure site must roll
// back, accept the retry, and reopen cleanly.
TEST_F(WalTest, PostWriteFailureRollsBackSoTheRetryAndReopenSucceed) {
  for (const char* point :
       {"wal:after_append", "wal:fsync_error", "wal:after_fsync"}) {
    const std::string path =
        TempPath(std::string("rollback_") +
                 (point + 4) + ".wal");  // skip "wal:" for the filename
    WalReplay replay;
    auto wal = WriteAheadLog::Open(path, WalOptions{}, &replay).value();
    ASSERT_TRUE(wal->Append(1, {EdgeOp::Insert(1, 2)}).ok()) << point;
    const int64_t before = wal->bytes();

    Failpoints::Activate(point, Failpoints::Action::kError);
    EXPECT_FALSE(wal->Append(2, {EdgeOp::Insert(3, 4)}).ok()) << point;
    Failpoints::DeactivateAll();
    // Memory and disk both back at the pre-append state.
    EXPECT_EQ(wal->bytes(), before) << point;
    EXPECT_EQ(wal->records(), 1) << point;
    EXPECT_FALSE(wal->wedged()) << point;
    EXPECT_EQ(ReadWal(path).value().records.size(), 1u) << point;

    // The entry retries the same version after the failed (un-acked)
    // update; the log must hold versions 1,2 once — and still open.
    ASSERT_TRUE(wal->Append(2, {EdgeOp::Insert(3, 4)}).ok()) << point;
    ASSERT_TRUE(wal->Append(3, {EdgeOp::Insert(5, 6)}).ok()) << point;
    wal.reset();
    WalReplay reopened;
    auto healed = WriteAheadLog::Open(path, WalOptions{}, &reopened);
    ASSERT_TRUE(healed.ok())
        << point << ": " << healed.status().ToString();
    ASSERT_EQ(reopened.records.size(), 3u) << point;
    EXPECT_EQ(reopened.records[1].version, 2) << point;
    EXPECT_EQ(reopened.records[2].version, 3) << point;
  }
}

// If Reset's truncation lands but the magic rewrite fails (ENOSPC mid
// auto-checkpoint), appending to the magic-less file would strand every
// later acked record behind an un-openable log. The log must wedge —
// refuse appends un-acked — and a reopen must recover.
TEST_F(WalTest, ResetMagicFailureWedgesInsteadOfStrandingLaterAppends) {
  const std::string path = TempPath("reset_wedge.wal");
  WalReplay replay;
  auto wal = WriteAheadLog::Open(path, WalOptions{}, &replay).value();
  ASSERT_TRUE(wal->Append(1, {EdgeOp::Insert(1, 2)}).ok());

  Failpoints::Activate("wal:reset_magic", Failpoints::Action::kError);
  EXPECT_FALSE(wal->Reset().ok());
  EXPECT_TRUE(wal->wedged());
  EXPECT_GE(wal->sync_errors(), 1);

  // Every further append (and reset) refuses instead of writing records
  // into a file with no magic — the failure is loud, never an ack.
  const Status refused = wal->Append(2, {EdgeOp::Insert(3, 4)});
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("wedged"), std::string::npos);
  EXPECT_FALSE(wal->Reset().ok());
  wal.reset();

  // The truncated file reads as an empty log, and a restart's Open
  // re-heals it into a fresh appendable one.
  EXPECT_TRUE(ReadWal(path).value().records.empty());
  WalReplay recovered;
  auto reopened = WriteAheadLog::Open(path, WalOptions{}, &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened.value()->wedged());
  ASSERT_TRUE(reopened.value()->Append(2, {EdgeOp::Insert(3, 4)}).ok());
}

// A CRC break in the *middle* of the log is corrupted acked state, not
// a torn tail: silently truncating there would discard the intact,
// acked records behind it. Flip every byte of the first record (with
// two intact records after it) and require a loud error.
TEST_F(WalTest, CorruptMiddleRecordFailsLoudlyInsteadOfTruncating) {
  const std::string path = TempPath("mid_corrupt.wal");
  WalReplay replay;
  auto wal = WriteAheadLog::Open(path, WalOptions{}, &replay).value();
  const int64_t magic_bytes = wal->bytes();
  ASSERT_TRUE(wal->Append(1, {EdgeOp::Insert(1, 2)}).ok());
  const int64_t first_end = wal->bytes();
  ASSERT_TRUE(wal->Append(2, {EdgeOp::Insert(2, 3), EdgeOp::Delete(1, 2)}).ok());
  ASSERT_TRUE(wal->Append(3, {EdgeOp::Insert(4, 5)}).ok());
  wal.reset();
  const std::string committed = ReadFileOrDie(path);

  const std::string mutated_path = TempPath("mid_corrupt_copy.wal");
  for (size_t at = static_cast<size_t>(magic_bytes);
       at < static_cast<size_t>(first_end); ++at) {
    std::string mutated = committed;
    mutated[at] = static_cast<char>(mutated[at] ^ 0xFF);
    WriteFileOrDie(mutated_path, mutated);
    const Result<WalReplay> read = ReadWal(mutated_path);
    EXPECT_FALSE(read.ok()) << "offset " << at;
    // Open must refuse too — never heal-by-truncation across acked
    // records.
    WalReplay opened_replay;
    EXPECT_FALSE(
        WriteAheadLog::Open(mutated_path, WalOptions{}, &opened_replay)
            .ok())
        << "offset " << at;
  }
}

// ------------------------------------------------------------ snapshots

TEST_F(WalTest, SnapshotRoundTripUnweightedWithLabels) {
  GraphSnapshot snap;
  snap.weighted = false;
  snap.version = 7;
  snap.num_vertices = 5;
  snap.edges = {{0, 1}, {1, 2}, {4, 0}};
  snap.labels = {10, 20, 30, 40, 50};
  const std::string path = TempPath("labeled.snap");
  ASSERT_TRUE(SaveGraphSnapshot(path, snap).ok());

  const Result<GraphSnapshot> loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().weighted);
  EXPECT_EQ(loaded.value().version, 7);
  EXPECT_EQ(loaded.value().num_vertices, 5u);
  EXPECT_EQ(loaded.value().edges, snap.edges);
  EXPECT_EQ(loaded.value().labels, snap.labels);
}

TEST_F(WalTest, SnapshotRoundTripWeighted) {
  GraphSnapshot snap;
  snap.weighted = true;
  snap.version = 3;
  snap.num_vertices = 4;
  snap.weighted_edges = {{0, 1, 2}, {2, 3, 9}};
  const std::string path = TempPath("weighted.snap");
  ASSERT_TRUE(SaveGraphSnapshot(path, snap).ok());
  const Result<GraphSnapshot> loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().weighted);
  EXPECT_EQ(loaded.value().weighted_edges, snap.weighted_edges);
  EXPECT_TRUE(loaded.value().labels.empty());
}

// A snapshot is never legitimately torn (tmp + rename is atomic), so any
// corruption is a loud error — unlike the WAL's tolerated tail.
TEST_F(WalTest, CorruptSnapshotIsAnErrorNotATruncation) {
  GraphSnapshot snap;
  snap.num_vertices = 3;
  snap.edges = {{0, 1}, {1, 2}};
  const std::string path = TempPath("corrupt.snap");
  ASSERT_TRUE(SaveGraphSnapshot(path, snap).ok());
  const std::string committed = ReadFileOrDie(path);

  // Flip one byte anywhere — the CRC footer must catch it.
  for (const size_t at : {size_t{0}, committed.size() / 2}) {
    std::string mutated = committed;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x01);
    WriteFileOrDie(path, mutated);
    EXPECT_FALSE(LoadGraphSnapshot(path).ok()) << "offset " << at;
  }
  // Truncation too.
  WriteFileOrDie(path, committed.substr(0, committed.size() - 3));
  EXPECT_FALSE(LoadGraphSnapshot(path).ok());
  EXPECT_FALSE(LoadGraphSnapshot(TempPath("absent.snap")).ok());
}

TEST_F(WalTest, SnapshotWriteFailureLeavesThePreviousSnapshotIntact) {
  GraphSnapshot v1;
  v1.num_vertices = 2;
  v1.version = 1;
  v1.edges = {{0, 1}};
  const std::string path = TempPath("atomic.snap");
  ASSERT_TRUE(SaveGraphSnapshot(path, v1).ok());

  GraphSnapshot v2 = v1;
  v2.version = 2;
  v2.edges.push_back({1, 0});
  // Die mid-tmp-write: the rename never happens, so the old snapshot
  // must still load.
  Failpoints::Activate("snap:mid_write", Failpoints::Action::kError);
  EXPECT_FALSE(SaveGraphSnapshot(path, v2).ok());
  const Result<GraphSnapshot> loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().version, 1);
  EXPECT_EQ(loaded.value().edges, v1.edges);
}

TEST_F(WalTest, FailpointCatalogCoversTheDurabilityPath) {
  const std::vector<std::string> names = WalFailpointNames();
  EXPECT_GE(names.size(), 10u);
  for (const char* required :
       {"apply:before_wal", "wal:mid_append", "wal:after_append",
        "wal:fsync_error", "apply:before_publish", "snap:mid_write",
        "snap:before_rename", "snap:after_rename", "wal:reset_magic",
        "snap:after_reset"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required),
              names.end())
        << required;
  }
}

}  // namespace
}  // namespace ddsgraph
