#include "graph/wcc.h"

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(WccTest, EmptyGraph) {
  const WccResult wcc = WeaklyConnectedComponents(Digraph());
  EXPECT_EQ(wcc.num_components, 0u);
}

TEST(WccTest, IsolatedVerticesAreSingletons) {
  const Digraph g = Digraph::FromEdges(3, {});
  const WccResult wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 3u);
}

TEST(WccTest, DirectionIsIgnored) {
  // 0 -> 1 and 2 -> 1: weakly one component despite no directed path 0..2.
  const Digraph g = Digraph::FromEdges(3, {{0, 1}, {2, 1}});
  const WccResult wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 1u);
  EXPECT_EQ(wcc.component[0], wcc.component[2]);
}

TEST(WccTest, TwoComponents) {
  const Digraph g = Digraph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}});
  const WccResult wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 2u);
  EXPECT_EQ(wcc.component[0], wcc.component[2]);
  EXPECT_NE(wcc.component[0], wcc.component[3]);
}

TEST(WccTest, MembersGroupsAllVertices) {
  const Digraph g = Digraph::FromEdges(6, {{0, 1}, {2, 3}, {3, 2}});
  const WccResult wcc = WeaklyConnectedComponents(g);
  const auto members = wcc.Members();
  EXPECT_EQ(members.size(), wcc.num_components);
  size_t total = 0;
  for (const auto& group : members) total += group.size();
  EXPECT_EQ(total, g.NumVertices());
}

}  // namespace
}  // namespace ddsgraph
