#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(3.14000, 4), "3.14");
  EXPECT_EQ(FormatDouble(12.0, 4), "12");
  EXPECT_EQ(FormatDouble(0.002, 4), "0.002");
  EXPECT_EQ(FormatDouble(-1.5, 2), "-1.5");
  EXPECT_EQ(FormatDouble(0.0, 4), "0");
}

TEST(FormatSecondsTest, PicksUnitAdaptively) {
  EXPECT_EQ(FormatSeconds(12.3456), "12.346 s");
  EXPECT_EQ(FormatSeconds(0.0451), "45.1 ms");
  EXPECT_EQ(FormatSeconds(0.00087), "870 us");
}

TEST(TableTest, MarkdownAlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  std::ostringstream os;
  t.PrintMarkdown(os);
  const std::string expected =
      "| name  | value |\n"
      "|-------|-------|\n"
      "| alpha | 1     |\n"
      "| b     | 12345 |\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b", "c"});
  t.AddRow({"1", "2", "3"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(TableTest, CountsRowsAndCols) {
  Table t({"x"});
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.NumCols(), 1u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableDeathTest, RowArityMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

}  // namespace
}  // namespace ddsgraph
