// Deterministic failpoint injection (util/failpoint.h, DESIGN.md §16):
// the zero-cost-when-off gate, fire_after / fire_times arithmetic, the
// spec grammar dds_server --failpoints speaks, and the fork-based proof
// that abort mode dies with the sentinel exit code and no cleanup.

#include "util/failpoint.h"

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

// Failpoints are process-global; every test leaves the registry empty so
// suites sharing this binary never see a stray armed point.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DeactivateAll(); }
};

TEST_F(FailpointTest, InactiveByDefault) {
  EXPECT_FALSE(DDS_FAILPOINT("fp:never_armed"));
  EXPECT_FALSE(Failpoints::active("fp:never_armed"));
  // An unarmed evaluation must not even register a hit: the fast path
  // (one relaxed load) never reaches the registry.
  EXPECT_EQ(Failpoints::hits("fp:never_armed"), 0);
}

TEST_F(FailpointTest, ErrorFiresOnceThenDisarms) {
  Failpoints::Activate("fp:a", Failpoints::Action::kError);
  EXPECT_TRUE(Failpoints::active("fp:a"));
  EXPECT_TRUE(DDS_FAILPOINT("fp:a"));
  // fire_times defaults to 1: the point disarmed itself.
  EXPECT_FALSE(Failpoints::active("fp:a"));
  EXPECT_FALSE(DDS_FAILPOINT("fp:a"));
  EXPECT_EQ(Failpoints::hits("fp:a"), 1);
}

TEST_F(FailpointTest, FireAfterSkipsTheFirstNEvaluations) {
  Failpoints::Activate("fp:b", Failpoints::Action::kError,
                       /*fire_after=*/2);
  EXPECT_FALSE(DDS_FAILPOINT("fp:b"));  // pass 1
  EXPECT_FALSE(DDS_FAILPOINT("fp:b"));  // pass 2
  EXPECT_TRUE(DDS_FAILPOINT("fp:b"));   // fire
  EXPECT_EQ(Failpoints::hits("fp:b"), 3);
}

TEST_F(FailpointTest, FireTimesBoundsErrorFirings) {
  Failpoints::Activate("fp:c", Failpoints::Action::kError,
                       /*fire_after=*/1, /*fire_times=*/2);
  EXPECT_FALSE(DDS_FAILPOINT("fp:c"));
  EXPECT_TRUE(DDS_FAILPOINT("fp:c"));
  EXPECT_TRUE(DDS_FAILPOINT("fp:c"));
  EXPECT_FALSE(DDS_FAILPOINT("fp:c"));  // exhausted → disarmed
  EXPECT_FALSE(Failpoints::active("fp:c"));
}

TEST_F(FailpointTest, ReactivationResetsCounters) {
  Failpoints::Activate("fp:d", Failpoints::Action::kError);
  EXPECT_TRUE(DDS_FAILPOINT("fp:d"));
  Failpoints::Activate("fp:d", Failpoints::Action::kError,
                       /*fire_after=*/1);
  EXPECT_EQ(Failpoints::hits("fp:d"), 0);
  EXPECT_FALSE(DDS_FAILPOINT("fp:d"));
  EXPECT_TRUE(DDS_FAILPOINT("fp:d"));
}

TEST_F(FailpointTest, DeactivateAndDeactivateAll) {
  Failpoints::Activate("fp:e", Failpoints::Action::kError);
  Failpoints::Activate("fp:f", Failpoints::Action::kError);
  Failpoints::Deactivate("fp:e");
  EXPECT_FALSE(Failpoints::active("fp:e"));
  EXPECT_TRUE(Failpoints::active("fp:f"));
  Failpoints::DeactivateAll();
  EXPECT_FALSE(Failpoints::active("fp:f"));
  EXPECT_FALSE(DDS_FAILPOINT("fp:f"));
}

TEST_F(FailpointTest, SpecGrammarArmsAndRejects) {
  ASSERT_TRUE(
      Failpoints::ActivateFromSpec("fp:g=error@2,fp:h=abort").ok());
  EXPECT_TRUE(Failpoints::active("fp:g"));
  EXPECT_TRUE(Failpoints::active("fp:h"));
  // fire_after carried through the spec.
  EXPECT_FALSE(DDS_FAILPOINT("fp:g"));
  EXPECT_FALSE(DDS_FAILPOINT("fp:g"));
  EXPECT_TRUE(DDS_FAILPOINT("fp:g"));
  Failpoints::DeactivateAll();

  EXPECT_FALSE(Failpoints::ActivateFromSpec("no_equals").ok());
  EXPECT_FALSE(Failpoints::ActivateFromSpec("x=bogus").ok());
  EXPECT_FALSE(Failpoints::ActivateFromSpec("x=error@notanumber").ok());
  EXPECT_FALSE(Failpoints::ActivateFromSpec("=error").ok());
}

TEST_F(FailpointTest, FailpointErrorNamesThePoint) {
  const Status status = FailpointError("wal:fsync_error");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("injected failpoint: wal:fsync_error"),
            std::string::npos);
}

// The abort action must be process death at the evaluation instruction —
// exit code kAbortExitCode, no destructors, nothing after the macro runs.
// Forked so the death is observable from the test.
TEST_F(FailpointTest, AbortDiesWithTheSentinelExitCode) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Failpoints::Activate("fp:boom", Failpoints::Action::kAbort);
    (void)DDS_FAILPOINT("fp:boom");  // does not return
    _exit(1);                        // reached = the abort failed
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), Failpoints::kAbortExitCode);
}

}  // namespace
}  // namespace ddsgraph
