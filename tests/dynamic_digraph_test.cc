#include "stream/dynamic_digraph.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "stream/edge_stream.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

// ----------------------------------------------------------- edge stream

TEST(EdgeStreamTest, ParsesAndFormatsOps) {
  const Result<EdgeBatch> batch = ParseEdgeOps("+1 2, +2 3 5; -1 2");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), 3u);
  EXPECT_EQ(batch.value()[0], EdgeOp::Insert(1, 2));
  EXPECT_EQ(batch.value()[1], EdgeOp::Insert(2, 3, 5));
  EXPECT_EQ(batch.value()[2], EdgeOp::Delete(1, 2));
  // Format(Parse(s)) is canonical: weight-1 inserts drop the weight.
  EXPECT_EQ(FormatEdgeOps(batch.value()), "+1 2, +2 3 5, -1 2");
}

TEST(EdgeStreamTest, RejectsMalformedOps) {
  EXPECT_FALSE(ParseEdgeOps("").ok());
  EXPECT_FALSE(ParseEdgeOps("   ").ok());
  EXPECT_FALSE(ParseEdgeOps("+1").ok());
  EXPECT_FALSE(ParseEdgeOps("x1 2").ok());
  EXPECT_FALSE(ParseEdgeOps("+1 2 foo").ok());
  EXPECT_FALSE(ParseEdgeOps("+1 2, , -3 4").ok());
}

TEST(EdgeStreamTest, LoadsTimestampedStreamFiles) {
  const std::string path = testing::TempDir() + "/stream_ok.txt";
  {
    std::ofstream out(path);
    out << "# comment\n"
        << "0 +1 2\n"
        << "0 +2 3 7\n"
        << "\n"
        << "% another comment\n"
        << "5 -1 2\n";
  }
  const Result<std::vector<TimestampedOp>> stream = LoadEdgeStream(path);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  ASSERT_EQ(stream.value().size(), 3u);
  EXPECT_EQ(stream.value()[0], (TimestampedOp{0, EdgeOp::Insert(1, 2)}));
  EXPECT_EQ(stream.value()[1], (TimestampedOp{0, EdgeOp::Insert(2, 3, 7)}));
  EXPECT_EQ(stream.value()[2], (TimestampedOp{5, EdgeOp::Delete(1, 2)}));
}

TEST(EdgeStreamTest, RejectsDecreasingTimestampsWithLineNumber) {
  const std::string path = testing::TempDir() + "/stream_bad.txt";
  {
    std::ofstream out(path);
    out << "3 +1 2\n2 +2 3\n";
  }
  const Result<std::vector<TimestampedOp>> stream = LoadEdgeStream(path);
  ASSERT_FALSE(stream.ok());
  EXPECT_NE(stream.status().ToString().find(":2:"), std::string::npos)
      << stream.status().ToString();
}

TEST(EdgeStreamTest, BatchesByTimestampWithSplit) {
  const std::vector<TimestampedOp> stream = {
      {0, EdgeOp::Insert(0, 1)}, {0, EdgeOp::Insert(1, 2)},
      {0, EdgeOp::Insert(2, 3)}, {4, EdgeOp::Delete(0, 1)},
      {9, EdgeOp::Insert(3, 4)}, {9, EdgeOp::Insert(4, 5)},
  };
  const std::vector<EdgeBatch> by_ts = BatchByTimestamp(stream);
  ASSERT_EQ(by_ts.size(), 3u);
  EXPECT_EQ(by_ts[0].size(), 3u);
  EXPECT_EQ(by_ts[1].size(), 1u);
  EXPECT_EQ(by_ts[2].size(), 2u);
  // max_batch_ops additionally splits within a timestamp.
  const std::vector<EdgeBatch> split = BatchByTimestamp(stream, 2);
  ASSERT_EQ(split.size(), 4u);
  EXPECT_EQ(split[0].size(), 2u);
  EXPECT_EQ(split[1].size(), 1u);
}

TEST(EdgeStreamTest, BurstStreamIsDeterministicAndWellFormed) {
  BurstStreamOptions options;
  options.num_vertices = 50;
  options.batches = 12;
  options.ops_per_batch = 20;
  const std::vector<EdgeBatch> a = GenerateBurstStream(options, 7);
  const std::vector<EdgeBatch> b = GenerateBurstStream(options, 7);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 12u);
  for (const EdgeBatch& batch : a) {
    EXPECT_EQ(batch.size(), 20u);
    for (const EdgeOp& op : batch) {
      EXPECT_NE(op.from, op.to);
      EXPECT_LT(op.from, 50u);
      EXPECT_LT(op.to, 50u);
    }
  }
  EXPECT_NE(a, GenerateBurstStream(options, 8));
}

// -------------------------------------------------- overlay bit-identity

// Reference model: the logical edge set maintained with exactly the
// FromEdges semantics the overlay promises (self-loops dropped, unweighted
// inserts idempotent, weighted inserts merge by summing, deletes total).
template <typename WeightPolicy>
struct ReferenceModel {
  using Graph = DigraphT<WeightPolicy>;

  std::map<std::pair<VertexId, VertexId>, int64_t> edges;
  uint32_t num_vertices = 0;

  void Seed(const Graph& base) {
    num_vertices = base.NumVertices();
    for (VertexId u = 0; u < base.NumVertices(); ++u) {
      const auto nbrs = base.OutNeighbors(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        edges[{u, nbrs[k]}] = base.OutWeight(u, k);
      }
    }
  }

  void Apply(const EdgeBatch& batch) {
    for (const EdgeOp& op : batch) {
      if (op.from == op.to) continue;
      // Mirrors DynamicDigraphT::ApplyBatch: any non-self-loop op grows
      // the vertex set, applied or not.
      num_vertices = std::max(num_vertices, std::max(op.from, op.to) + 1);
      if (op.kind == EdgeOp::Kind::kInsert) {
        if (op.weight <= 0) continue;
        if constexpr (Graph::kWeighted) {
          edges[{op.from, op.to}] += op.weight;
        } else {
          edges[{op.from, op.to}] = 1;
        }
      } else {
        edges.erase({op.from, op.to});
      }
    }
  }

  Graph Build() const {
    std::vector<typename Graph::EdgeType> list;
    list.reserve(edges.size());
    for (const auto& [arc, weight] : edges) {
      if constexpr (Graph::kWeighted) {
        list.push_back(WeightedEdge{arc.first, arc.second, weight});
      } else {
        list.emplace_back(arc.first, arc.second);
      }
    }
    return Graph::FromEdges(num_vertices, std::move(list));
  }
};

// Asserts that the overlay's merged iteration enumerates, for every
// vertex, exactly the arcs (and weights, in the same ascending order) of
// the freshly built static graph — without compacting first. This is the
// bit-identity property DESIGN.md §14 pins down.
template <typename WeightPolicy>
void ExpectOverlayMatchesStatic(const DynamicDigraphT<WeightPolicy>& dyn,
                                const DigraphT<WeightPolicy>& ref) {
  ASSERT_EQ(dyn.NumVertices(), ref.NumVertices());
  ASSERT_EQ(dyn.NumEdges(), ref.NumEdges());
  ASSERT_EQ(dyn.TotalWeight(), ref.TotalWeight());
  using Arc = std::pair<VertexId, int64_t>;
  for (VertexId u = 0; u < ref.NumVertices(); ++u) {
    std::vector<Arc> overlay_out;
    dyn.ForEachOutEdge(
        u, [&](VertexId v, int64_t w) { overlay_out.emplace_back(v, w); });
    std::vector<Arc> static_out;
    const auto nbrs = ref.OutNeighbors(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      static_out.emplace_back(nbrs[k], ref.OutWeight(u, k));
    }
    ASSERT_EQ(overlay_out, static_out) << "out-arcs of " << u;

    std::vector<Arc> overlay_in;
    dyn.ForEachInEdge(
        u, [&](VertexId v, int64_t w) { overlay_in.emplace_back(v, w); });
    std::vector<Arc> static_in;
    const auto srcs = ref.InNeighbors(u);
    for (size_t k = 0; k < srcs.size(); ++k) {
      static_in.emplace_back(srcs[k], ref.InWeight(u, k));
    }
    ASSERT_EQ(overlay_in, static_in) << "in-arcs of " << u;

    EXPECT_EQ(dyn.OutDegree(u), ref.OutDegree(u));
    EXPECT_EQ(dyn.InDegree(u), ref.InDegree(u));
    EXPECT_EQ(dyn.WeightedOutDegree(u), ref.WeightedOutDegree(u));
    EXPECT_EQ(dyn.WeightedInDegree(u), ref.WeightedInDegree(u));
  }
}

EdgeBatch RandomBatch(uint32_t n, int ops, bool weighted_weights, Rng* rng) {
  EdgeBatch batch;
  batch.reserve(static_cast<size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    const VertexId u = static_cast<VertexId>(rng->NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng->NextBounded(n));
    if (rng->NextBounded(100) < 35) {
      batch.push_back(EdgeOp::Delete(u, v));
    } else {
      const int64_t w =
          weighted_weights ? rng->NextInRange(1, 5) : 1;
      batch.push_back(EdgeOp::Insert(u, v, w));
    }
  }
  return batch;
}

template <typename WeightPolicy>
void RunRandomScheduleIdentity(uint64_t seed, CompactionPolicy policy,
                               int batches) {
  using Graph = DigraphT<WeightPolicy>;
  constexpr uint32_t n = 30;
  Rng rng(seed);

  std::vector<typename Graph::EdgeType> base_edges;
  for (int i = 0; i < 60; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if constexpr (Graph::kWeighted) {
      base_edges.push_back(WeightedEdge{u, v, rng.NextInRange(1, 4)});
    } else {
      base_edges.emplace_back(u, v);
    }
  }
  const Graph base = Graph::FromEdges(n, std::move(base_edges));

  DynamicDigraphT<WeightPolicy> dyn(base, policy);
  ReferenceModel<WeightPolicy> model;
  model.Seed(base);

  for (int b = 0; b < batches; ++b) {
    const EdgeBatch batch =
        RandomBatch(n, /*ops=*/12, Graph::kWeighted, &rng);
    dyn.ApplyBatch(batch);
    model.Apply(batch);
    const Graph ref = model.Build();
    ExpectOverlayMatchesStatic(dyn, ref);
    for (const EdgeOp& op : batch) {
      if (op.from == op.to) continue;
      const auto it = model.edges.find({op.from, op.to});
      EXPECT_EQ(dyn.EdgeWeight(op.from, op.to),
                it == model.edges.end() ? 0 : it->second);
    }
  }
  // Compacting afterwards must be a pure representation change.
  const int64_t version_before = dyn.version();
  dyn.Compact();
  EXPECT_EQ(dyn.version(), version_before);
  EXPECT_EQ(dyn.delta_entries(), 0);
  ExpectOverlayMatchesStatic(dyn, model.Build());
}

TEST(DynamicDigraphTest, RandomScheduleMatchesRebuiltStaticUnweighted) {
  CompactionPolicy no_auto;
  no_auto.auto_compact = false;  // every check runs through the delta path
  RunRandomScheduleIdentity<UnitWeight>(11, no_auto, /*batches=*/40);
}

TEST(DynamicDigraphTest, RandomScheduleMatchesRebuiltStaticWeighted) {
  CompactionPolicy no_auto;
  no_auto.auto_compact = false;
  RunRandomScheduleIdentity<Int64Weight>(12, no_auto, /*batches=*/40);
}

TEST(DynamicDigraphTest, IdentityHoldsAcrossFrequentCompactions) {
  CompactionPolicy eager;
  eager.min_delta_entries = 4;  // compact nearly every batch
  eager.max_delta_fraction = 0.01;
  RunRandomScheduleIdentity<UnitWeight>(13, eager, /*batches=*/30);
  RunRandomScheduleIdentity<Int64Weight>(14, eager, /*batches=*/30);
}

TEST(DynamicDigraphTest, AppliedCountSkipsNoOps) {
  const Digraph base = Digraph::FromEdges(4, {{0, 1}, {1, 2}});
  DynamicDigraph dyn(base);
  EXPECT_EQ(dyn.ApplyBatch({EdgeOp::Insert(2, 2)}), 0);   // self-loop
  EXPECT_EQ(dyn.ApplyBatch({EdgeOp::Insert(0, 1)}), 0);   // already present
  EXPECT_EQ(dyn.ApplyBatch({EdgeOp::Delete(3, 0)}), 0);   // absent
  EXPECT_EQ(dyn.ApplyBatch({EdgeOp::Insert(0, 1, 0)}), 0);  // weight <= 0
  EXPECT_EQ(dyn.version(), 4);  // every batch bumps, applied or not
  EXPECT_EQ(dyn.NumEdges(), 2);
  EXPECT_EQ(dyn.ApplyBatch({EdgeOp::Insert(2, 3), EdgeOp::Delete(0, 1)}), 2);
  EXPECT_EQ(dyn.NumEdges(), 2);
}

TEST(DynamicDigraphTest, ObserverSeesOldAndNewWeights) {
  const WeightedDigraph base =
      WeightedDigraph::FromEdges(3, {WeightedEdge{0, 1, 2}});
  DynamicWeightedDigraph dyn(base);
  std::vector<std::tuple<VertexId, VertexId, int64_t, int64_t>> seen;
  const auto observer = [&](VertexId u, VertexId v, int64_t old_w,
                            int64_t new_w) {
    seen.emplace_back(u, v, old_w, new_w);
  };
  dyn.ApplyBatch({EdgeOp::Insert(0, 1, 3),   // merge: 2 -> 5
                  EdgeOp::Insert(1, 2, 4),   // create: 0 -> 4
                  EdgeOp::Insert(2, 2, 9),   // self-loop: not observed
                  EdgeOp::Delete(0, 1)},     // remove: 5 -> 0
                 observer);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_tuple(0u, 1u, int64_t{2}, int64_t{5}));
  EXPECT_EQ(seen[1], std::make_tuple(1u, 2u, int64_t{0}, int64_t{4}));
  EXPECT_EQ(seen[2], std::make_tuple(0u, 1u, int64_t{5}, int64_t{0}));
}

TEST(DynamicDigraphTest, RevertToBaseStateDropsTheDeltaEntry) {
  const Digraph base = Digraph::FromEdges(3, {{0, 1}, {1, 2}});
  DynamicDigraph dyn(base);
  dyn.ApplyBatch({EdgeOp::Delete(0, 1)});
  EXPECT_EQ(dyn.delta_entries(), 1);
  EXPECT_EQ(dyn.NumEdges(), 1);
  // Re-inserting restores exactly the base arc: the delta entry is erased
  // even though the touched lists still remember the neighbor.
  dyn.ApplyBatch({EdgeOp::Insert(0, 1)});
  EXPECT_EQ(dyn.delta_entries(), 0);
  EXPECT_EQ(dyn.NumEdges(), 2);
  std::vector<VertexId> out;
  dyn.ForEachOutEdge(0, [&](VertexId v, int64_t) { out.push_back(v); });
  EXPECT_EQ(out, std::vector<VertexId>{1});
}

TEST(DynamicDigraphTest, VertexSetGrowsWithOps) {
  const Digraph base = Digraph::FromEdges(3, {{0, 1}});
  DynamicDigraph dyn(base);
  dyn.ApplyBatch({EdgeOp::Insert(2, 7)});
  EXPECT_EQ(dyn.NumVertices(), 8u);
  EXPECT_EQ(dyn.OutDegree(2), 1);
  EXPECT_EQ(dyn.InDegree(7), 1);
  // Even a no-op delete grows the id space (mirrors FromEdges taking a
  // vertex count independent of the arcs that survive normalization).
  dyn.ApplyBatch({EdgeOp::Delete(1, 11)});
  EXPECT_EQ(dyn.NumVertices(), 12u);
  const Digraph& snap = dyn.Snapshot();
  EXPECT_EQ(snap.NumVertices(), 12u);
  EXPECT_EQ(snap.NumEdges(), 2);
}

TEST(DynamicDigraphTest, AutoCompactionHonorsThePolicy) {
  const Digraph base = UniformDigraph(40, 200, 5);
  CompactionPolicy policy;
  policy.min_delta_entries = 8;
  policy.max_delta_fraction = 0.01;
  DynamicDigraph dyn(base, policy);
  Rng rng(99);
  EXPECT_EQ(dyn.compactions(), 0);
  for (int b = 0; b < 10; ++b) {
    dyn.ApplyBatch(RandomBatch(40, 16, false, &rng));
    EXPECT_LT(dyn.delta_entries(), 8 + 16);  // never far past the bound
  }
  EXPECT_GT(dyn.compactions(), 0);
}

}  // namespace
}  // namespace ddsgraph
