#include "dds/naive_exact.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ddsgraph {
namespace {

TEST(NaiveExactTest, EmptyGraph) {
  const DdsSolution sol = NaiveExact(Digraph::FromEdges(4, {}));
  EXPECT_EQ(sol.density, 0.0);
  EXPECT_TRUE(sol.pair.Empty());
}

TEST(NaiveExactTest, SingleEdge) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  const DdsSolution sol = NaiveExact(g);
  EXPECT_NEAR(sol.density, 1.0, 1e-12);
  EXPECT_EQ(sol.pair.s, (std::vector<VertexId>{0}));
  EXPECT_EQ(sol.pair.t, (std::vector<VertexId>{1}));
  EXPECT_EQ(sol.pair_edges, 1);
}

TEST(NaiveExactTest, TwoCycle) {
  // 0 <-> 1: S = T = {0,1} gives 2 edges / 2 = 1; S={0},T={1} gives 1.
  const Digraph g = Digraph::FromEdges(2, {{0, 1}, {1, 0}});
  const DdsSolution sol = NaiveExact(g);
  EXPECT_NEAR(sol.density, 1.0, 1e-12);
}

TEST(NaiveExactTest, BicliqueDensityIsSqrtST) {
  const Digraph g = BicliqueWithNoise(6, 2, 4, 0, 1);
  const DdsSolution sol = NaiveExact(g);
  EXPECT_NEAR(sol.density, std::sqrt(8.0), 1e-12);
  EXPECT_EQ(sol.pair.s.size(), 2u);
  EXPECT_EQ(sol.pair.t.size(), 4u);
}

TEST(NaiveExactTest, StarPrefersFullFanOut) {
  // 0 -> {1..5}: best pair is ({0}, {1..5}) with density 5/sqrt(5).
  const Digraph g =
      Digraph::FromEdges(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  const DdsSolution sol = NaiveExact(g);
  EXPECT_NEAR(sol.density, std::sqrt(5.0), 1e-12);
  EXPECT_EQ(sol.pair.s.size(), 1u);
  EXPECT_EQ(sol.pair.t.size(), 5u);
}

TEST(NaiveExactTest, OverlappingSidesWhenCyclic) {
  // Directed triangle: best is S = T = {0,1,2}, density 3/3 = 1.
  const Digraph g = Digraph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  const DdsSolution sol = NaiveExact(g);
  EXPECT_NEAR(sol.density, 1.0, 1e-12);
  EXPECT_EQ(sol.pair.s.size(), 3u);
  EXPECT_EQ(sol.pair.t.size(), 3u);
}

TEST(NaiveExactTest, SolutionDensityIsConsistent) {
  const Digraph g = UniformDigraph(8, 30, 77);
  const DdsSolution sol = NaiveExact(g);
  EXPECT_NEAR(sol.density,
              static_cast<double>(sol.pair_edges) /
                  std::sqrt(static_cast<double>(sol.pair.s.size()) *
                            static_cast<double>(sol.pair.t.size())),
              1e-12);
  EXPECT_EQ(sol.pair_edges, CountPairEdges(g, sol.pair.s, sol.pair.t));
}

TEST(NaiveExactDeathTest, RejectsLargeGraphs) {
  const Digraph g = UniformDigraph(20, 40, 1);
  EXPECT_DEATH(NaiveExact(g), "4\\^n");
}

}  // namespace
}  // namespace ddsgraph
