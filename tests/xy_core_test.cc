#include "core/xy_core.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

bool SideContains(const std::vector<VertexId>& side, VertexId v) {
  return std::binary_search(side.begin(), side.end(), v);
}

// Reference implementation: iterate global re-scans until stable, removing
// violators in a different (full-scan, highest-id-first) order than the
// production worklist. Fixpoint uniqueness says results must match.
XyCore ReferenceXyCore(const Digraph& g, int64_t x, int64_t y) {
  const uint32_t n = g.NumVertices();
  std::vector<bool> in_s(n, true);
  std::vector<bool> in_t(n, true);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int64_t v = n - 1; v >= 0; --v) {
      const VertexId u = static_cast<VertexId>(v);
      if (in_s[u] && x > 0) {
        int64_t deg = 0;
        for (VertexId w : g.OutNeighbors(u)) deg += in_t[w] ? 1 : 0;
        if (deg < x) {
          in_s[u] = false;
          changed = true;
        }
      }
      if (in_t[u] && y > 0) {
        int64_t deg = 0;
        for (VertexId w : g.InNeighbors(u)) deg += in_s[w] ? 1 : 0;
        if (deg < y) {
          in_t[u] = false;
          changed = true;
        }
      }
    }
  }
  XyCore core;
  for (VertexId v = 0; v < n; ++v) {
    if (in_s[v]) core.s.push_back(v);
    if (in_t[v]) core.t.push_back(v);
  }
  return core;
}

TEST(XyCoreTest, ZeroZeroCoreIsEverything) {
  const Digraph g = Digraph::FromEdges(4, {{0, 1}});
  const XyCore core = ComputeXyCore(g, 0, 0);
  EXPECT_EQ(core.s.size(), 4u);
  EXPECT_EQ(core.t.size(), 4u);
}

TEST(XyCoreTest, BicliqueIsItsOwnCore) {
  // 3x4 biclique: S side has out-degree 4, T side in-degree 3.
  const Digraph g = BicliqueWithNoise(7, 3, 4, 0, 1);
  const XyCore core = ComputeXyCore(g, 4, 3);
  ASSERT_EQ(core.s.size(), 3u);
  ASSERT_EQ(core.t.size(), 4u);
  for (VertexId u = 0; u < 3; ++u) EXPECT_TRUE(SideContains(core.s, u));
  for (VertexId v = 3; v < 7; ++v) EXPECT_TRUE(SideContains(core.t, v));
  // Anything stricter is empty.
  EXPECT_TRUE(ComputeXyCore(g, 5, 3).Empty());
  EXPECT_TRUE(ComputeXyCore(g, 4, 4).Empty());
}

TEST(XyCoreTest, CascadingPeel) {
  // Path 0 -> 1 -> 2 -> 3: [1,1]-core must cascade to empty (the tail
  // vertex 3 has no outgoing edge, vertex 0 no incoming, and removals
  // propagate).
  const Digraph g = Digraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  const XyCore core = ComputeXyCore(g, 1, 1);
  // S candidates need an out-edge to T, T candidates an in-edge from S.
  // S = {0,1,2}, T = {1,2,3} survives: 0->1, 1->2, 2->3 all inside.
  EXPECT_EQ(core.s.size(), 3u);
  EXPECT_EQ(core.t.size(), 3u);
  EXPECT_FALSE(SideContains(core.s, 3));
  EXPECT_FALSE(SideContains(core.t, 0));
}

TEST(XyCoreTest, TwoCycleSurvivesOneOne) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}, {1, 0}});
  const XyCore core = ComputeXyCore(g, 1, 1);
  EXPECT_EQ(core.s.size(), 2u);
  EXPECT_EQ(core.t.size(), 2u);
}

TEST(XyCoreTest, EmptyForExcessiveThresholds) {
  const Digraph g = UniformDigraph(20, 60, 2);
  EXPECT_TRUE(ComputeXyCore(g, 100, 1).Empty());
  EXPECT_TRUE(ComputeXyCore(g, 1, 100).Empty());
}

TEST(XyCoreTest, MatchesReferenceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const Digraph g = UniformDigraph(30, 120, seed);
    for (int64_t x = 0; x <= 5; ++x) {
      for (int64_t y = 0; y <= 5; ++y) {
        const XyCore got = ComputeXyCore(g, x, y);
        const XyCore want = ReferenceXyCore(g, x, y);
        EXPECT_EQ(got.s, want.s) << "seed " << seed << " x " << x << " y "
                                 << y;
        EXPECT_EQ(got.t, want.t) << "seed " << seed << " x " << x << " y "
                                 << y;
      }
    }
  }
}

TEST(XyCoreTest, CoresAreNested) {
  const Digraph g = RmatDigraph(7, 1200, 4);
  const XyCore outer = ComputeXyCore(g, 1, 1);
  const XyCore inner = ComputeXyCore(g, 2, 3);
  for (VertexId u : inner.s) EXPECT_TRUE(SideContains(outer.s, u));
  for (VertexId v : inner.t) EXPECT_TRUE(SideContains(outer.t, v));
}

TEST(XyCoreTest, ValidityPredicate) {
  const Digraph g = UniformDigraph(25, 150, 9);
  const XyCore core = ComputeXyCore(g, 2, 2);
  EXPECT_TRUE(IsValidXyCore(g, core, 2, 2));
  if (!core.Empty()) {
    // Tampering breaks validity: drop the top S vertex, keeping T intact —
    // some T vertex likely loses support. (If not, at least the predicate
    // still passes on valid input; assert the well-formed direction only.)
    XyCore tampered = core;
    tampered.s.clear();
    EXPECT_FALSE(IsValidXyCore(g, tampered, 2, 2));
  }
}

TEST(XyCoreTest, WithinRestrictedCandidatesMatchesNestedComputation) {
  // Computing the [3,3]-core within the [1,1]-core equals computing it on
  // the full graph (nestedness).
  const Digraph g = RmatDigraph(7, 1500, 11);
  const XyCore weak = ComputeXyCore(g, 1, 1);
  const XyCore direct = ComputeXyCore(g, 3, 3);
  const XyCore within = ComputeXyCoreWithin(g, 3, 3, weak.s, weak.t);
  EXPECT_EQ(within.s, direct.s);
  EXPECT_EQ(within.t, direct.t);
}

TEST(XyCoreTest, ScratchOverloadMatchesAndReusesAcrossCalls) {
  // The scratch-backed overload must agree with the scratch-less one (and
  // hence with the full-graph peel) while one scratch instance serves many
  // calls with varying thresholds and candidate sets — the exact engine's
  // per-guess refinement pattern.
  const Digraph g = UniformDigraph(60, 500, 19);
  XyCoreScratch scratch;
  for (int64_t x = 1; x <= 4; ++x) {
    for (int64_t y = 1; y <= 4; ++y) {
      const XyCore weak = ComputeXyCore(g, 1, 1);
      const XyCore direct = ComputeXyCore(g, x, y);
      const XyCore with_scratch =
          ComputeXyCoreWithin(g, x, y, weak.s, weak.t, &scratch);
      EXPECT_EQ(with_scratch.s, direct.s) << x << "," << y;
      EXPECT_EQ(with_scratch.t, direct.t) << x << "," << y;
      // Nested use: refine the just-computed core further.
      if (!direct.Empty()) {
        const XyCore tighter = ComputeXyCore(g, x + 1, y);
        const XyCore nested =
            ComputeXyCoreWithin(g, x + 1, y, direct.s, direct.t, &scratch);
        EXPECT_EQ(nested.s, tighter.s);
        EXPECT_EQ(nested.t, tighter.t);
      }
    }
  }
}

TEST(XyCoreTest, ReversalDuality) {
  // [x,y]-core of G equals the swapped [y,x]-core of the transpose.
  const Digraph g = UniformDigraph(40, 300, 15);
  const Digraph r = g.Reversed();
  const XyCore core = ComputeXyCore(g, 2, 3);
  const XyCore dual = ComputeXyCore(r, 3, 2);
  EXPECT_EQ(core.s, dual.t);
  EXPECT_EQ(core.t, dual.s);
}

TEST(XyCoreTest, MaximalityNoOutsideVertexCanJoin) {
  // For a random graph and the [2,2]-core: adding any outside vertex to S
  // must violate some constraint after re-peeling (uniqueness of the
  // maximal fixpoint). Verified by re-running the peel with the vertex
  // force-included: the fixpoint drops it again.
  const Digraph g = UniformDigraph(30, 150, 23);
  const XyCore core = ComputeXyCore(g, 2, 2);
  std::vector<VertexId> all;
  for (VertexId v = 0; v < g.NumVertices(); ++v) all.push_back(v);
  const XyCore recomputed = ComputeXyCoreWithin(g, 2, 2, all, all);
  EXPECT_EQ(recomputed.s, core.s);
  EXPECT_EQ(recomputed.t, core.t);
}

TEST(XyCoreTest, OneSidedConstraints) {
  const Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  // x = 3, y = 0: S = {0} (needs 3 out-edges), T stays all.
  const XyCore core = ComputeXyCore(g, 3, 0);
  EXPECT_EQ(core.s, (std::vector<VertexId>{0}));
  EXPECT_EQ(core.t.size(), 4u);
  // x = 0, y = 1: T = {1,2,3}, S stays all.
  const XyCore core2 = ComputeXyCore(g, 0, 1);
  EXPECT_EQ(core2.s.size(), 4u);
  EXPECT_EQ(core2.t, (std::vector<VertexId>{1, 2, 3}));
}

}  // namespace
}  // namespace ddsgraph
