#include "util/stern_brocot.h"

#include <cmath>
#include <set>

#include "util/random.h"

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(FractionTest, MakeFractionReduces) {
  EXPECT_EQ(MakeFraction(6, 4), (Fraction{3, 2}));
  EXPECT_EQ(MakeFraction(5, 5), (Fraction{1, 1}));
  EXPECT_EQ(MakeFraction(0, 7), (Fraction{0, 1}));
  EXPECT_EQ(MakeFraction(7, 1), (Fraction{7, 1}));
}

TEST(FractionTest, LessIsExact) {
  EXPECT_TRUE(FractionLess(Fraction{1, 3}, Fraction{1, 2}));
  EXPECT_FALSE(FractionLess(Fraction{1, 2}, Fraction{1, 3}));
  EXPECT_FALSE(FractionLess(Fraction{2, 4}, Fraction{1, 2}));
  // Values whose doubles collide still compare exactly.
  EXPECT_TRUE(FractionLess(Fraction{333333333, 1000000000},
                           Fraction{333333334, 1000000000}));
}

TEST(FractionTest, ToStringFormats) {
  EXPECT_EQ((Fraction{3, 7}).ToString(), "3/7");
}

TEST(SimplestFractionTest, EmptyIntervalReturnsNullopt) {
  EXPECT_FALSE(SimplestFractionBetween(Fraction{1, 2}, Fraction{1, 2})
                   .has_value());
  EXPECT_FALSE(SimplestFractionBetween(Fraction{2, 3}, Fraction{1, 2})
                   .has_value());
}

TEST(SimplestFractionTest, KnownIntervals) {
  // (1/3, 1/2) -> 2/5 is the unique fraction with the smallest denominator.
  auto f = SimplestFractionBetween(Fraction{1, 3}, Fraction{1, 2});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, (Fraction{2, 5}));
  // (2, 4) contains the integer 3.
  f = SimplestFractionBetween(Fraction{2, 1}, Fraction{4, 1});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, (Fraction{3, 1}));
  // (0, 1/10) -> 1/11.
  f = SimplestFractionBetween(Fraction{0, 1}, Fraction{1, 10});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, (Fraction{1, 11}));
}

// Brute-force reference: smallest denominator (then numerator) fraction in
// the open interval, searched up to a denominator bound.
std::optional<Fraction> BruteSimplest(const Fraction& lo, const Fraction& hi,
                                      int64_t max_den) {
  for (int64_t q = 1; q <= max_den; ++q) {
    for (int64_t p = 1; p <= 4 * max_den; ++p) {
      const Fraction f = MakeFraction(p, q);
      if (f.den != q) continue;  // not in lowest terms with this q
      if (FractionLess(lo, f) && FractionLess(f, hi)) return f;
    }
  }
  return std::nullopt;
}

TEST(SimplestFractionTest, MatchesBruteForceOnRandomIntervals) {
  uint64_t state = 42;
  for (int trial = 0; trial < 300; ++trial) {
    const int64_t p1 = 1 + static_cast<int64_t>(SplitMix64(state) % 40);
    const int64_t q1 = 1 + static_cast<int64_t>(SplitMix64(state) % 40);
    const int64_t p2 = 1 + static_cast<int64_t>(SplitMix64(state) % 40);
    const int64_t q2 = 1 + static_cast<int64_t>(SplitMix64(state) % 40);
    Fraction lo = MakeFraction(p1, q1);
    Fraction hi = MakeFraction(p2, q2);
    if (!FractionLess(lo, hi)) std::swap(lo, hi);
    if (!FractionLess(lo, hi)) continue;  // equal
    const auto got = SimplestFractionBetween(lo, hi);
    const auto want = BruteSimplest(lo, hi, 200);
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(want.has_value());
    EXPECT_EQ(*got, *want) << "(" << lo.ToString() << ", " << hi.ToString()
                           << ")";
  }
}

TEST(HasRealizableRatioTest, MatchesBruteForce) {
  const int64_t n = 7;
  // All realizable ratios for n = 7.
  const std::vector<Fraction> all = AllRealizableRatios(n);
  auto brute_between = [&](const Fraction& lo, const Fraction& hi) {
    for (const Fraction& f : all) {
      if (FractionLess(lo, f) && FractionLess(f, hi)) return true;
    }
    return false;
  };
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i; j < all.size(); ++j) {
      const Fraction& lo = all[i];
      const Fraction& hi = all[j];
      EXPECT_EQ(HasRealizableRatioBetween(lo, hi, n), brute_between(lo, hi))
          << "(" << lo.ToString() << ", " << hi.ToString() << ")";
    }
  }
}

TEST(AllRealizableRatiosTest, SortedUniqueAndComplete) {
  const std::vector<Fraction> ratios = AllRealizableRatios(5);
  for (size_t i = 1; i < ratios.size(); ++i) {
    EXPECT_TRUE(FractionLess(ratios[i - 1], ratios[i]));
  }
  // Count distinct values p/q with p,q in [1,5]: sum over reduced pairs.
  std::set<std::pair<int64_t, int64_t>> expected;
  for (int64_t p = 1; p <= 5; ++p) {
    for (int64_t q = 1; q <= 5; ++q) {
      const Fraction f = MakeFraction(p, q);
      expected.insert({f.num, f.den});
    }
  }
  EXPECT_EQ(ratios.size(), expected.size());
  EXPECT_EQ(ratios.front(), (Fraction{1, 5}));
  EXPECT_EQ(ratios.back(), (Fraction{5, 1}));
}

TEST(BestRationalInBoxTest, RecoversExactFractions) {
  const Fraction f = BestRationalInBox(0.75, 10, 10);
  EXPECT_EQ(f, (Fraction{3, 4}));
  const Fraction g = BestRationalInBox(2.5, 10, 10);
  EXPECT_EQ(g, (Fraction{5, 2}));
}

TEST(BestRationalInBoxTest, PiConvergent) {
  const Fraction f = BestRationalInBox(M_PI, 1000, 1000);
  // 355/113 is the famous convergent; nothing with num,den <= 1000 beats it.
  EXPECT_EQ(f, (Fraction{355, 113}));
}

TEST(BestRationalInBoxTest, RespectsBox) {
  for (double target : {0.001, 0.37, 1.0, 2.718281828, 57.3, 4000.0}) {
    for (int64_t box : {1ll, 3ll, 10ll, 50ll}) {
      const Fraction f = BestRationalInBox(target, box, box);
      EXPECT_GE(f.num, 1);
      EXPECT_GE(f.den, 1);
      EXPECT_LE(f.num, box);
      EXPECT_LE(f.den, box);
    }
  }
}

TEST(BestRationalInBoxTest, CloseToTarget) {
  uint64_t state = 7;
  for (int trial = 0; trial < 200; ++trial) {
    const double target =
        0.01 + 20.0 * (SplitMix64(state) % 10000) / 10000.0;
    const Fraction f = BestRationalInBox(target, 50, 50);
    // Brute-force nearest fraction in the box.
    double best = 1e100;
    for (int64_t p = 1; p <= 50; ++p) {
      for (int64_t q = 1; q <= 50; ++q) {
        best = std::min(best,
                        std::abs(static_cast<double>(p) / q - target));
      }
    }
    // Continued fractions with clamped last coefficient are near-optimal;
    // accept up to 3x the optimal distance (plus slack for ties).
    EXPECT_LE(std::abs(f.ToDouble() - target), 3 * best + 1e-9)
        << "target " << target << " got " << f.ToString();
  }
}

}  // namespace
}  // namespace ddsgraph
