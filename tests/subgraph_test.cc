#include "graph/subgraph.h"

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

Digraph Path5() {
  // 0 -> 1 -> 2 -> 3 -> 4 plus a chord 0 -> 3.
  return Digraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 3}});
}

TEST(InduceTest, KeepsInternalEdgesOnly) {
  const Digraph g = Path5();
  const InducedSubgraph sub = Induce(g, {0, 1, 3});
  EXPECT_EQ(sub.graph.NumVertices(), 3u);
  // Internal edges: 0->1 and 0->3. (1->2, 2->3, 3->4 leave the set.)
  EXPECT_EQ(sub.graph.NumEdges(), 2);
  const VertexId l0 = sub.from_original[0];
  const VertexId l1 = sub.from_original[1];
  const VertexId l3 = sub.from_original[3];
  EXPECT_TRUE(sub.graph.HasEdge(l0, l1));
  EXPECT_TRUE(sub.graph.HasEdge(l0, l3));
}

TEST(InduceTest, MappingsAreInverse) {
  const Digraph g = Path5();
  const InducedSubgraph sub = Induce(g, {4, 2, 0});
  for (VertexId local = 0; local < sub.graph.NumVertices(); ++local) {
    EXPECT_EQ(sub.from_original[sub.to_original[local]], local);
  }
  EXPECT_EQ(sub.from_original[1], kNoVertex);
  EXPECT_EQ(sub.from_original[3], kNoVertex);
}

TEST(InduceTest, ToOriginalTranslatesVectors) {
  const Digraph g = Path5();
  const InducedSubgraph sub = Induce(g, {3, 1});
  const std::vector<VertexId> local = {0, 1};
  const std::vector<VertexId> original = sub.ToOriginal(local);
  EXPECT_EQ(original, (std::vector<VertexId>{3, 1}));
}

TEST(InduceTest, EmptySelection) {
  const Digraph g = Path5();
  const InducedSubgraph sub = Induce(g, {});
  EXPECT_EQ(sub.graph.NumVertices(), 0u);
  EXPECT_EQ(sub.graph.NumEdges(), 0);
}

TEST(InduceDeathTest, DuplicateVertexAborts) {
  const Digraph g = Path5();
  EXPECT_DEATH(Induce(g, {1, 1}), "duplicate");
}

TEST(InducePairTest, KeepsOnlySourceToTargetEdges) {
  const Digraph g = Path5();
  std::vector<bool> keep_source(5, false);
  std::vector<bool> keep_target(5, false);
  keep_source[0] = true;   // S = {0}
  keep_target[1] = true;   // T = {1, 3}
  keep_target[3] = true;
  const InducedSubgraph sub = InducePair(g, keep_source, keep_target);
  // Vertices kept: 0, 1, 3; edges kept: 0->1, 0->3 (3->4 has 4 not kept;
  // 1->2 has source 1 not in S).
  EXPECT_EQ(sub.graph.NumVertices(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 2);
}

TEST(InducePairTest, OverlappingSidesKeepBothRoles) {
  // 0 -> 1, 1 -> 0; vertex present on both sides.
  const Digraph g = Digraph::FromEdges(2, {{0, 1}, {1, 0}});
  std::vector<bool> both(2, true);
  const InducedSubgraph sub = InducePair(g, both, both);
  EXPECT_EQ(sub.graph.NumVertices(), 2u);
  EXPECT_EQ(sub.graph.NumEdges(), 2);
}

TEST(InducePairTest, VertexOnNeitherSideDropped) {
  const Digraph g = Path5();
  std::vector<bool> keep_source(5, false);
  std::vector<bool> keep_target(5, false);
  keep_source[0] = true;
  keep_target[1] = true;
  const InducedSubgraph sub = InducePair(g, keep_source, keep_target);
  EXPECT_EQ(sub.graph.NumVertices(), 2u);
  EXPECT_EQ(sub.from_original[2], kNoVertex);
  EXPECT_EQ(sub.from_original[4], kNoVertex);
}

}  // namespace
}  // namespace ddsgraph
