#include "dds/ratio_space.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "dds/density.h"

namespace ddsgraph {
namespace {

TEST(RatioSpaceTest, MinMaxRatios) {
  EXPECT_EQ(MinRatio(7), (Fraction{1, 7}));
  EXPECT_EQ(MaxRatio(7), (Fraction{7, 1}));
}

TEST(IntervalDensityBoundTest, MatchesManualFormula) {
  RatioInterval interval{Fraction{1, 2}, Fraction{2, 1}, 3.0, 4.0};
  // phi(sqrt(4)) = phi(2) = (sqrt 2 + 1/sqrt 2)/2.
  const double phi = (std::sqrt(2.0) + 1.0 / std::sqrt(2.0)) / 2.0;
  EXPECT_NEAR(IntervalDensityBound(interval), 4.0 * phi, 1e-12);
}

TEST(IntervalDensityBoundTest, TightIntervalApproachesEndpointBound) {
  RatioInterval interval{Fraction{100, 101}, Fraction{101, 100}, 5.0, 5.0};
  EXPECT_NEAR(IntervalDensityBound(interval), 5.0, 1e-3);
}

TEST(IntervalDensityBoundTest, SoundForAnyPairInInterval) {
  // For any (s_size, t_size, edges) with ratio inside the interval, the
  // bound must dominate h(endpoint) * phi(ratio/endpoint) >= rho. We check
  // the pure arithmetic: rho <= h_lo * phi(a/lo) for a in the interval
  // implies rho <= IntervalDensityBound when h bounds are max'ed.
  RatioInterval interval{Fraction{1, 3}, Fraction{3, 1}, 2.0, 2.5};
  const double bound = IntervalDensityBound(interval);
  for (double a : {0.34, 0.5, 1.0, 1.7, 2.9}) {
    const double lo = interval.lo.ToDouble();
    const double hi = interval.hi.ToDouble();
    const double via_lo = interval.h_upper_lo * RatioMismatchPhi(a / lo);
    const double via_hi = interval.h_upper_hi * RatioMismatchPhi(hi / a);
    EXPECT_LE(std::min(via_lo, via_hi), bound + 1e-9) << "a = " << a;
  }
}

TEST(ProbeRatioForIntervalTest, ReturnsInsideFraction) {
  RatioInterval interval{Fraction{1, 4}, Fraction{4, 1}, 0, 0};
  const auto probe = ProbeRatioForInterval(interval, 10);
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(FractionLess(interval.lo, *probe));
  EXPECT_TRUE(FractionLess(*probe, interval.hi));
  EXPECT_LE(probe->num, 10);
  EXPECT_LE(probe->den, 10);
  // Geometric midpoint of (1/4, 4) is 1; the probe should be exactly 1.
  EXPECT_EQ(*probe, (Fraction{1, 1}));
}

TEST(ProbeRatioForIntervalTest, ExhaustedIntervalReturnsNullopt) {
  // Between 1/2 and 1 the simplest fraction is 2/3; with n = 2 nothing in
  // the box lies strictly inside.
  RatioInterval interval{Fraction{1, 2}, Fraction{1, 1}, 0, 0};
  EXPECT_FALSE(ProbeRatioForInterval(interval, 2).has_value());
  EXPECT_TRUE(ProbeRatioForInterval(interval, 3).has_value());
}

TEST(ProbeRatioForIntervalTest, SkewedIntervalStaysInside) {
  RatioInterval interval{Fraction{1, 9}, Fraction{1, 7}, 0, 0};
  const auto probe = ProbeRatioForInterval(interval, 9);
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(FractionLess(interval.lo, *probe));
  EXPECT_TRUE(FractionLess(*probe, interval.hi));
  EXPECT_EQ(*probe, (Fraction{1, 8}));
}

}  // namespace
}  // namespace ddsgraph
