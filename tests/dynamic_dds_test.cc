#include "stream/dynamic_dds.h"

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dds/core_exact.h"
#include "dds/density.h"
#include "dds/naive_exact.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

// The reference model from dynamic_digraph_test, reduced to what the
// bracket tests need: the logical edge set with FromEdges semantics,
// rebuilt fresh after every batch.
template <typename WeightPolicy>
class StreamModel {
 public:
  using Graph = DigraphT<WeightPolicy>;

  void Seed(const Graph& base) {
    num_vertices_ = base.NumVertices();
    for (VertexId u = 0; u < base.NumVertices(); ++u) {
      const auto nbrs = base.OutNeighbors(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        edges_[{u, nbrs[k]}] = base.OutWeight(u, k);
      }
    }
  }

  void Apply(const EdgeBatch& batch) {
    for (const EdgeOp& op : batch) {
      if (op.from == op.to) continue;
      num_vertices_ = std::max(num_vertices_, std::max(op.from, op.to) + 1);
      if (op.kind == EdgeOp::Kind::kInsert) {
        if (op.weight <= 0) continue;
        if constexpr (Graph::kWeighted) {
          edges_[{op.from, op.to}] += op.weight;
        } else {
          edges_[{op.from, op.to}] = 1;
        }
      } else {
        edges_.erase({op.from, op.to});
      }
    }
  }

  Graph Build() const {
    std::vector<typename Graph::EdgeType> list;
    list.reserve(edges_.size());
    for (const auto& [arc, weight] : edges_) {
      if constexpr (Graph::kWeighted) {
        list.push_back(WeightedEdge{arc.first, arc.second, weight});
      } else {
        list.emplace_back(arc.first, arc.second);
      }
    }
    return Graph::FromEdges(num_vertices_, std::move(list));
  }

 private:
  std::map<std::pair<VertexId, VertexId>, int64_t> edges_;
  uint32_t num_vertices_ = 0;
};

EdgeBatch RandomBatch(uint32_t n, int ops, bool weighted_weights, Rng* rng) {
  EdgeBatch batch;
  for (int i = 0; i < ops; ++i) {
    const VertexId u = static_cast<VertexId>(rng->NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng->NextBounded(n));
    if (rng->NextBounded(100) < 30) {
      batch.push_back(EdgeOp::Delete(u, v));
    } else {
      batch.push_back(
          EdgeOp::Insert(u, v, weighted_weights ? rng->NextInRange(1, 4) : 1));
    }
  }
  return batch;
}

// The acceptance property of DESIGN.md §14: after EVERY applied batch the
// engine's bracket contains the exact optimal density of the freshly
// rebuilt static graph. Ground truth is NaiveExact (exhaustive), so the
// check is independent of the whole flow/core solver stack.
TEST(DynamicDdsTest, BracketContainsNaiveExactAfterEveryBatch) {
  constexpr uint32_t n = 10;  // NaiveExact territory
  Rng rng(21);
  std::vector<Edge> base_edges;
  for (int i = 0; i < 18; ++i) {
    base_edges.emplace_back(static_cast<VertexId>(rng.NextBounded(n)),
                            static_cast<VertexId>(rng.NextBounded(n)));
  }
  const Digraph base = Digraph::FromEdges(n, std::move(base_edges));

  DynamicDigraph dynamic(base);
  DynamicDdsEngine engine(&dynamic);
  StreamModel<UnitWeight> model;
  model.Seed(base);

  for (int b = 0; b < 25; ++b) {
    const EdgeBatch batch = RandomBatch(n, 6, false, &rng);
    engine.ApplyBatch(batch);
    model.Apply(batch);
    if (b % 7 == 6) engine.Resolve();
    if (b % 5 == 4) engine.RefreshBounds();

    const Digraph rebuilt = model.Build();
    const double exact = NaiveExact(rebuilt).density;
    const DensityBracket bracket = engine.bracket();
    const double eps = 1e-9 * std::max(1.0, exact);
    EXPECT_LE(bracket.lower, exact + eps)
        << "batch " << b << ": lower bound overshoots the optimum";
    EXPECT_GE(bracket.upper + eps, exact)
        << "batch " << b << ": upper bound undercuts the optimum";
    EXPECT_LE(bracket.lower, bracket.upper + eps);
    EXPECT_EQ(bracket.version, dynamic.version());

    // The maintained lower bound is not just sound but *exact*: it equals
    // the incumbent pair's density evaluated on the rebuilt graph,
    // bit-for-bit (same formula as PairDensity).
    if (!bracket.pair.Empty()) {
      EXPECT_EQ(bracket.lower,
                PairDensity(rebuilt, bracket.pair.s, bracket.pair.t))
          << "batch " << b;
    }
  }
}

TEST(DynamicDdsTest, BracketContainsCoreExactAfterEveryBatchWeighted) {
  constexpr uint32_t n = 24;
  Rng rng(31);
  std::vector<WeightedEdge> base_edges;
  for (int i = 0; i < 50; ++i) {
    base_edges.push_back(
        WeightedEdge{static_cast<VertexId>(rng.NextBounded(n)),
                     static_cast<VertexId>(rng.NextBounded(n)),
                     rng.NextInRange(1, 4)});
  }
  const WeightedDigraph base =
      WeightedDigraph::FromEdges(n, std::move(base_edges));

  DynamicWeightedDigraph dynamic(base);
  DynamicWeightedDdsEngine engine(&dynamic);
  StreamModel<Int64Weight> model;
  model.Seed(base);

  for (int b = 0; b < 15; ++b) {
    const EdgeBatch batch = RandomBatch(n, 8, true, &rng);
    engine.ApplyBatch(batch);
    model.Apply(batch);
    if (b % 6 == 5) engine.Resolve();

    const WeightedDigraph rebuilt = model.Build();
    const double exact = SolveExactDds(rebuilt, ExactOptions{}).density;
    const DensityBracket bracket = engine.bracket();
    const double eps = 1e-9 * std::max(1.0, exact);
    EXPECT_LE(bracket.lower, exact + eps) << "batch " << b;
    EXPECT_GE(bracket.upper + eps, exact) << "batch " << b;
    if (!bracket.pair.Empty()) {
      EXPECT_EQ(bracket.lower,
                PairDensity(rebuilt, bracket.pair.s, bracket.pair.t))
          << "batch " << b;
    }
  }
}

TEST(DynamicDdsTest, ResolveCollapsesTheBracketAndMatchesStaticSolve) {
  Rng rng(41);
  const uint32_t n = 20;
  std::vector<Edge> base_edges;
  for (int i = 0; i < 40; ++i) {
    base_edges.emplace_back(static_cast<VertexId>(rng.NextBounded(n)),
                            static_cast<VertexId>(rng.NextBounded(n)));
  }
  const Digraph base = Digraph::FromEdges(n, std::move(base_edges));
  DynamicDigraph dynamic(base);
  DynamicDdsEngine engine(&dynamic);
  StreamModel<UnitWeight> model;
  model.Seed(base);

  for (int b = 0; b < 6; ++b) {
    const EdgeBatch batch = RandomBatch(n, 10, false, &rng);
    engine.ApplyBatch(batch);
    model.Apply(batch);
  }
  const DdsSolution dynamic_solution = engine.Resolve();
  const DdsSolution static_solution =
      SolveExactDds(model.Build(), ExactOptions{});
  // The compacted snapshot and the rebuilt static graph are the same CSR,
  // and the solver is deterministic — densities agree bit-for-bit.
  EXPECT_EQ(dynamic_solution.density, static_solution.density);
  EXPECT_EQ(dynamic_solution.pair.s, static_solution.pair.s);
  EXPECT_EQ(dynamic_solution.pair.t, static_solution.pair.t);

  const DensityBracket bracket = engine.bracket();
  EXPECT_TRUE(bracket.exact);
  EXPECT_NEAR(bracket.lower, static_solution.density,
              1e-9 * std::max(1.0, static_solution.density));
  EXPECT_EQ(engine.inserted_weight_since_solve(), 0);
  EXPECT_EQ(engine.resolves(), 1);
}

TEST(DynamicDdsTest, DriftGrowsAndRefreshTightensTheUpperBound) {
  const Digraph base = Digraph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}});
  DynamicDigraph dynamic(base);
  DynamicDdsEngine engine(&dynamic);
  engine.Resolve();
  const DensityBracket anchored = engine.bracket();
  EXPECT_TRUE(anchored.exact);

  // A burst of inserts loosens the bracket through the drift term...
  EdgeBatch burst;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 3; v < 6; ++v) burst.push_back(EdgeOp::Insert(u, v));
  }
  engine.ApplyBatch(burst);
  const DensityBracket drifted = engine.bracket();
  EXPECT_EQ(engine.inserted_weight_since_solve(), 9);
  EXPECT_GT(drifted.upper, anchored.upper);
  EXPECT_FALSE(drifted.exact);

  // ...and a bound-only refresh (no flow work) pulls the upper bound back
  // toward the truth and may adopt a denser core as incumbent.
  const DensityBracket refreshed = engine.RefreshBounds();
  EXPECT_LE(refreshed.upper, drifted.upper);
  EXPECT_GE(refreshed.lower, drifted.lower - 1e-12);
  EXPECT_EQ(engine.refreshes(), 1);
  EXPECT_EQ(engine.resolves(), 1);
}

TEST(DynamicDdsTest, DeletionsKeepTheLowerBoundExact) {
  // S x T block whose density the incumbent witnesses; deleting block
  // edges must move the maintained lower bound in lockstep.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 3; v < 7; ++v) edges.emplace_back(u, v);
  }
  const Digraph base = Digraph::FromEdges(7, std::move(edges));
  DynamicDigraph dynamic(base);
  DynamicDdsEngine engine(&dynamic);
  engine.Resolve();
  const double before = engine.bracket().lower;
  EXPECT_NEAR(before, 12.0 / std::sqrt(12.0), 1e-12);

  engine.ApplyBatch({EdgeOp::Delete(0, 3), EdgeOp::Delete(1, 4)});
  const DensityBracket after = engine.bracket();
  // Same pair, two fewer block edges: 10 / sqrt(12).
  EXPECT_NEAR(after.lower, 10.0 / std::sqrt(12.0), 1e-12);
  StreamModel<UnitWeight> model;
  model.Seed(base);
  model.Apply({EdgeOp::Delete(0, 3), EdgeOp::Delete(1, 4)});
  EXPECT_EQ(after.lower,
            PairDensity(model.Build(), after.pair.s, after.pair.t));
}

}  // namespace
}  // namespace ddsgraph
