#include "dds/batch_peel_approx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dds/naive_exact.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

TEST(BatchPeelApproxTest, EmptyGraph) {
  EXPECT_EQ(BatchPeelApprox(Digraph::FromEdges(3, {})).density, 0.0);
}

TEST(BatchPeelApproxTest, SingleEdge) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  EXPECT_NEAR(BatchPeelApprox(g).density, 1.0, 1e-12);
}

TEST(BatchPeelApproxTest, BicliqueIsRecovered) {
  const Digraph g = BicliqueWithNoise(9, 4, 5, 0, 1);
  const DdsSolution sol = BatchPeelApprox(g);
  EXPECT_NEAR(sol.density, std::sqrt(20.0), 1e-9);
}

TEST(BatchPeelApproxTest, SelfConsistentReporting) {
  const Digraph g = RmatDigraph(7, 800, 4);
  const DdsSolution sol = BatchPeelApprox(g);
  EXPECT_NEAR(sol.density, DirectedDensity(g, sol.pair), 1e-12);
  EXPECT_EQ(sol.pair_edges, CountPairEdges(g, sol.pair.s, sol.pair.t));
  EXPECT_GE(sol.upper_bound, sol.density);
  EXPECT_GT(sol.stats.ratios_probed, 0);
  EXPECT_GT(sol.stats.binary_search_iters, 0);  // total passes
}

TEST(BatchPeelApproxTest, UsesFewPassesPerRatio) {
  // The point of the batch variant: O(log n / log beta) passes per ratio.
  const Digraph g = UniformDigraph(2000, 12000, 5);
  BatchPeelOptions options;
  options.batch_epsilon = 0.5;
  const DdsSolution sol = BatchPeelApprox(g, options);
  const double avg_passes =
      static_cast<double>(sol.stats.binary_search_iters) /
      static_cast<double>(sol.stats.ratios_probed);
  // log_{1.5}(2000) ~ 18.7; allow generous slack, but far below n.
  EXPECT_LT(avg_passes, 60.0);
}

class BatchPeelGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchPeelGuaranteeTest, CertifiedBracketHolds) {
  const auto [seed, density_class] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 53 + 11);
  const uint32_t n = 5 + static_cast<uint32_t>(rng.NextBounded(6));
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  const int64_t m =
      std::max<int64_t>(1, max_edges * (1 + density_class) / 7);
  const Digraph g = UniformDigraph(n, m, static_cast<uint64_t>(seed) + 40);
  const DdsSolution exact = NaiveExact(g);
  const DdsSolution approx = BatchPeelApprox(g);
  // The certified upper bound brackets the optimum...
  EXPECT_LE(exact.density, approx.upper_bound + 1e-9)
      << "n=" << n << " m=" << m;
  // ...and the solution is within the guarantee factor.
  const double factor = approx.upper_bound / approx.density;
  EXPECT_GE(approx.density * factor + 1e-9, exact.density);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDensities, BatchPeelGuaranteeTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 4)));

}  // namespace
}  // namespace ddsgraph
