#include "dds/batch_peel_approx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dds/naive_exact.h"
#include "dds/weighted_dds.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

TEST(BatchPeelApproxTest, EmptyGraph) {
  EXPECT_EQ(BatchPeelApprox(Digraph::FromEdges(3, {})).density, 0.0);
}

TEST(BatchPeelApproxTest, SingleEdge) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  EXPECT_NEAR(BatchPeelApprox(g).density, 1.0, 1e-12);
}

TEST(BatchPeelApproxTest, BicliqueIsRecovered) {
  const Digraph g = BicliqueWithNoise(9, 4, 5, 0, 1);
  const DdsSolution sol = BatchPeelApprox(g);
  EXPECT_NEAR(sol.density, std::sqrt(20.0), 1e-9);
}

TEST(BatchPeelApproxTest, SelfConsistentReporting) {
  const Digraph g = RmatDigraph(7, 800, 4);
  const DdsSolution sol = BatchPeelApprox(g);
  EXPECT_NEAR(sol.density, DirectedDensity(g, sol.pair), 1e-12);
  EXPECT_EQ(sol.pair_edges, CountPairEdges(g, sol.pair.s, sol.pair.t));
  EXPECT_GE(sol.upper_bound, sol.density);
  EXPECT_GT(sol.stats.ratios_probed, 0);
  EXPECT_GT(sol.stats.binary_search_iters, 0);  // total passes
}

TEST(BatchPeelApproxTest, UsesFewPassesPerRatio) {
  // The point of the batch variant: O(log n / log beta) passes per ratio.
  const Digraph g = UniformDigraph(2000, 12000, 5);
  BatchPeelOptions options;
  options.batch_epsilon = 0.5;
  const DdsSolution sol = BatchPeelApprox(g, options);
  const double avg_passes =
      static_cast<double>(sol.stats.binary_search_iters) /
      static_cast<double>(sol.stats.ratios_probed);
  // log_{1.5}(2000) ~ 18.7; allow generous slack, but far below n.
  EXPECT_LT(avg_passes, 60.0);
}

class BatchPeelGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchPeelGuaranteeTest, CertifiedBracketHolds) {
  const auto [seed, density_class] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 53 + 11);
  const uint32_t n = 5 + static_cast<uint32_t>(rng.NextBounded(6));
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  const int64_t m =
      std::max<int64_t>(1, max_edges * (1 + density_class) / 7);
  const Digraph g = UniformDigraph(n, m, static_cast<uint64_t>(seed) + 40);
  const DdsSolution exact = NaiveExact(g);
  const DdsSolution approx = BatchPeelApprox(g);
  // The certified upper bound brackets the optimum...
  EXPECT_LE(exact.density, approx.upper_bound + 1e-9)
      << "n=" << n << " m=" << m;
  // ...and the solution is within the guarantee factor.
  const double factor = approx.upper_bound / approx.density;
  EXPECT_GE(approx.density * factor + 1e-9, exact.density);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDensities, BatchPeelGuaranteeTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 4)));

// ------------------------------------------------------- weighted peeling

TEST(WeightedBatchPeelTest, UnitWeightsBitIdenticalToUnweighted) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Digraph base = RmatDigraph(6, 500, seed);
    const WeightedDigraph unit = WeightedDigraph::FromDigraph(base);
    const DdsSolution plain = BatchPeelApprox(base);
    const DdsSolution weighted = BatchPeelApprox(unit);
    EXPECT_EQ(weighted.pair.s, plain.pair.s) << "seed " << seed;
    EXPECT_EQ(weighted.pair.t, plain.pair.t) << "seed " << seed;
    EXPECT_EQ(weighted.density, plain.density) << "seed " << seed;
    EXPECT_EQ(weighted.pair_edges, plain.pair_edges) << "seed " << seed;
    EXPECT_EQ(weighted.lower_bound, plain.lower_bound) << "seed " << seed;
    EXPECT_EQ(weighted.upper_bound, plain.upper_bound) << "seed " << seed;
    // The pass count is the streaming cost model — it must not drift.
    EXPECT_EQ(weighted.stats.binary_search_iters,
              plain.stats.binary_search_iters)
        << "seed " << seed;
    EXPECT_EQ(weighted.stats.ratios_probed, plain.stats.ratios_probed);
  }
}

TEST(WeightedBatchPeelTest, HeavyEdgeBeatsBroadUnitBlock) {
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 3; v < 6; ++v) edges.push_back({u, v, 1});
  }
  edges.push_back({6, 7, 10});
  const WeightedDigraph g = WeightedDigraph::FromEdges(8, edges);
  const DdsSolution sol = BatchPeelApprox(g);
  EXPECT_NEAR(sol.density, 10.0, 1e-9);
  EXPECT_EQ(sol.pair.s, (std::vector<VertexId>{6}));
  EXPECT_EQ(sol.pair.t, (std::vector<VertexId>{7}));
}

class WeightedBatchPeelGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WeightedBatchPeelGuaranteeTest, CertifiedBracketHolds) {
  const auto [seed, dist] = GetParam();
  WeightOptions weights;
  weights.dist = dist == 0 ? WeightOptions::Dist::kUniform
                           : WeightOptions::Dist::kGeometric;
  weights.max_weight = 6;
  const WeightedDigraph g =
      (seed % 2 == 0)
          ? UniformWeightedDigraph(9, 30, static_cast<uint64_t>(seed) + 21,
                                   weights)
          : AttachRandomWeights(
                UniformDigraph(9, 26, static_cast<uint64_t>(seed) + 17),
                static_cast<uint64_t>(seed) + 29, weights);
  if (g.TotalWeight() == 0) return;
  const DdsSolution exact = WeightedNaiveExact(g);
  const DdsSolution approx = BatchPeelApprox(g);
  EXPECT_LE(exact.density, approx.upper_bound + 1e-9)
      << "seed " << seed << " dist " << dist;
  EXPECT_LE(approx.density, exact.density + 1e-9);
  EXPECT_NEAR(approx.density,
              PairDensity(g, approx.pair.s, approx.pair.t), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWeightDists, WeightedBatchPeelGuaranteeTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 2)));

}  // namespace
}  // namespace ddsgraph
