#include "core/xy_core_decomposition.h"

#include <gtest/gtest.h>

#include "core/xy_core.h"
#include "graph/generators.h"

namespace ddsgraph {
namespace {

// Reference: largest y with non-empty [x,y]-core by direct peeling per y.
int64_t BruteMaxYForX(const Digraph& g, int64_t x) {
  int64_t best = 0;
  for (int64_t y = 1; y <= g.MaxInDegree(); ++y) {
    if (ComputeXyCore(g, x, y).Empty()) break;
    best = y;
  }
  return best;
}

TEST(MaxYForXTest, EmptyGraph) {
  EXPECT_EQ(MaxYForX(Digraph::FromEdges(5, {}), 1), 0);
}

TEST(MaxYForXTest, SingleEdge) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  EXPECT_EQ(MaxYForX(g, 1), 1);
  EXPECT_EQ(MaxYForX(g, 2), 0);
}

TEST(MaxYForXTest, Biclique) {
  // 3x4 biclique: [x,y]-core non-empty iff x <= 4 and y <= 3.
  const Digraph g = BicliqueWithNoise(7, 3, 4, 0, 1);
  EXPECT_EQ(MaxYForX(g, 1), 3);
  EXPECT_EQ(MaxYForX(g, 4), 3);
  EXPECT_EQ(MaxYForX(g, 5), 0);
}

TEST(MaxYForXTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    const Digraph g = UniformDigraph(40, 250, seed);
    for (int64_t x = 1; x <= 8; ++x) {
      EXPECT_EQ(MaxYForX(g, x), BruteMaxYForX(g, x))
          << "seed " << seed << " x " << x;
    }
  }
}

TEST(MaxYForXTest, MatchesBruteForceOnPowerLawGraphs) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Digraph g = RmatDigraph(7, 1000, seed);
    for (int64_t x = 1; x <= 6; ++x) {
      EXPECT_EQ(MaxYForX(g, x), BruteMaxYForX(g, x))
          << "seed " << seed << " x " << x;
    }
  }
}

TEST(CoreSkylineTest, CornersAreStrictlyMonotone) {
  // One point per distinct y-level: x strictly increases, y strictly
  // decreases along the staircase corners.
  const Digraph g = RmatDigraph(8, 3000, 3);
  const std::vector<SkylinePoint> skyline = CoreSkyline(g);
  ASSERT_FALSE(skyline.empty());
  for (size_t i = 1; i < skyline.size(); ++i) {
    EXPECT_GT(skyline[i].x, skyline[i - 1].x);
    EXPECT_LT(skyline[i].y, skyline[i - 1].y);
  }
}

TEST(CoreSkylineTest, CornersCoverEveryLevel) {
  // The corner list is a lossless description of the dense staircase:
  // y_max(x) for any x is the y of the first corner at or right of x.
  const Digraph g = UniformDigraph(60, 500, 8);
  const std::vector<SkylinePoint> skyline = CoreSkyline(g);
  ASSERT_FALSE(skyline.empty());
  int64_t x = 1;
  for (const SkylinePoint& p : skyline) {
    for (; x <= p.x; ++x) {
      EXPECT_EQ(MaxYForX(g, x), p.y) << "x " << x;
    }
  }
  EXPECT_EQ(MaxYForX(g, skyline.back().x + 1), 0);
}

TEST(CoreSkylineTest, PointsAreRealizedAndMaximal) {
  const Digraph g = UniformDigraph(60, 500, 8);
  const int64_t x_limit = 6;
  for (const SkylinePoint& p : CoreSkyline(g, x_limit)) {
    EXPECT_FALSE(ComputeXyCore(g, p.x, p.y).Empty());
    // y-maximal at its x always; x-maximal at its y except for a level
    // truncated at the cap.
    EXPECT_TRUE(ComputeXyCore(g, p.x, p.y + 1).Empty());
    if (p.x < x_limit) {
      EXPECT_TRUE(ComputeXyCore(g, p.x + 1, p.y).Empty());
    }
  }
}

TEST(CoreSkylineTest, RespectsLimit) {
  const Digraph g = UniformDigraph(60, 600, 9);
  const auto skyline = CoreSkyline(g, 3);
  EXPECT_LE(skyline.size(), 3u);
  for (const SkylinePoint& p : skyline) EXPECT_LE(p.x, 3);
}

TEST(CoreSkylineTest, WeightedCornersStepOnWeightedThresholds) {
  // A single edge of weight 100: the weighted staircase has one level
  // spanning x = 1..100 at y = 100, and the corner walk reports it as one
  // point instead of 100 dense-x peels.
  const WeightedDigraph g = WeightedDigraph::FromEdges(2, {{0, 1, 100}});
  const auto skyline = CoreSkyline(g);
  ASSERT_EQ(skyline.size(), 1u);
  EXPECT_EQ(skyline[0].x, 100);
  EXPECT_EQ(skyline[0].y, 100);
}

TEST(CoreSkylineTest, WeightedCornersMatchBruteForce) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const WeightedDigraph g = UniformWeightedDigraph(20, 70, seed);
    const auto skyline = CoreSkyline(g);
    // Reconstruct y_max(x) from the corners and compare against the
    // direct per-x sweep over the full weighted x range.
    size_t corner = 0;
    for (int64_t x = 1; x <= g.MaxWeightedOutDegree(); ++x) {
      while (corner < skyline.size() && skyline[corner].x < x) ++corner;
      const int64_t expected =
          corner < skyline.size() ? skyline[corner].y : 0;
      EXPECT_EQ(MaxYForX(g, x), expected) << "seed " << seed << " x " << x;
    }
  }
}

TEST(CoreSkylineTest, UnitWeightsBitIdenticalToUnweighted) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Digraph base = RmatDigraph(6, 400, seed);
    const WeightedDigraph unit = WeightedDigraph::FromDigraph(base);
    const auto plain = CoreSkyline(base);
    const auto weighted = CoreSkyline(unit);
    ASSERT_EQ(plain.size(), weighted.size()) << "seed " << seed;
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].x, weighted[i].x) << "seed " << seed;
      EXPECT_EQ(plain[i].y, weighted[i].y) << "seed " << seed;
    }
  }
}

TEST(FixedXCoreNumbersTest, MembershipMatchesDirectCores) {
  // The defining property: {s,t}_number[v] >= y iff v is in the
  // corresponding side of the [x,y]-core.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Digraph g = UniformDigraph(35, 200, seed);
    for (int64_t x = 1; x <= 5; ++x) {
      const FixedXCoreNumbers numbers = ComputeFixedXCoreNumbers(g, x);
      EXPECT_EQ(numbers.y_max, MaxYForX(g, x));
      for (int64_t y = 0; y <= numbers.y_max + 1; ++y) {
        const XyCore core = ComputeXyCore(g, x, y);
        std::vector<bool> in_s(g.NumVertices(), false);
        std::vector<bool> in_t(g.NumVertices(), false);
        for (VertexId u : core.s) in_s[u] = true;
        for (VertexId v : core.t) in_t[v] = true;
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          EXPECT_EQ(numbers.s_number[v] >= y, in_s[v])
              << "seed " << seed << " x " << x << " y " << y << " v " << v;
          EXPECT_EQ(numbers.t_number[v] >= y, in_t[v])
              << "seed " << seed << " x " << x << " y " << y << " v " << v;
        }
      }
    }
  }
}

TEST(FixedXCoreNumbersTest, NumbersShrinkAsXGrows) {
  const Digraph g = RmatDigraph(7, 900, 13);
  const FixedXCoreNumbers a = ComputeFixedXCoreNumbers(g, 1);
  const FixedXCoreNumbers b = ComputeFixedXCoreNumbers(g, 3);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LE(b.s_number[v], a.s_number[v]);
    EXPECT_LE(b.t_number[v], a.t_number[v]);
  }
}

TEST(FixedXCoreNumbersTest, BicliqueNumbers) {
  // 3x4 biclique: S side survives up to y = 3, T side likewise; outside
  // vertices have s_number -1 (no out-edges) and t_number 0.
  const Digraph g = BicliqueWithNoise(8, 3, 4, 0, 1);
  const FixedXCoreNumbers numbers = ComputeFixedXCoreNumbers(g, 2);
  EXPECT_EQ(numbers.y_max, 3);
  for (VertexId u = 0; u < 3; ++u) EXPECT_EQ(numbers.s_number[u], 3);
  for (VertexId v = 3; v < 7; ++v) EXPECT_EQ(numbers.t_number[v], 3);
  EXPECT_EQ(numbers.s_number[7], -1);
  EXPECT_EQ(numbers.t_number[7], 0);
}

TEST(FixedXCoreNumbersTest, EmptyGraph) {
  const FixedXCoreNumbers numbers =
      ComputeFixedXCoreNumbers(Digraph::FromEdges(4, {}), 1);
  EXPECT_EQ(numbers.y_max, 0);
  for (int64_t s : numbers.s_number) EXPECT_EQ(s, -1);
  for (int64_t t : numbers.t_number) EXPECT_EQ(t, 0);
}

}  // namespace
}  // namespace ddsgraph
