#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(SimplexTest, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> opt 36 at (2, 6).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {3, 5};
  lp.AddConstraint({1, 0}, 4);
  lp.AddConstraint({0, 2}, 12);
  lp.AddConstraint({3, 2}, 18);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
}

TEST(SimplexTest, UnboundedDetected) {
  // max x with no constraint binding x.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 0};
  lp.AddConstraint({0, 1}, 5);  // only bounds y
  const LpSolution sol = SolveLp(lp);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= -1 with x >= 0 is infeasible.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.AddConstraint({1}, -1);
  const LpSolution sol = SolveLp(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, NegativeRhsFeasible) {
  // max x s.t. -x <= -2 (i.e. x >= 2), x <= 5 -> opt 5.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.AddConstraint({-1}, -2);
  lp.AddConstraint({1}, 5);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(SimplexTest, MinimizationViaNegatedObjective) {
  // min x + y s.t. x + y >= 3, encoded as max -(x+y), -(x+y) <= -3.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1, -1};
  lp.AddConstraint({-1, -1}, -3);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -3.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the optimum (degeneracy) —
  // Bland's rule must still terminate.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.AddConstraint({1, 0}, 1);
  lp.AddConstraint({0, 1}, 1);
  lp.AddConstraint({1, 1}, 2);
  lp.AddConstraint({2, 2}, 4);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(SimplexTest, ZeroObjective) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {0};
  lp.AddConstraint({1}, 3);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

TEST(SimplexTest, EqualityViaTwoInequalities) {
  // max 2x + y s.t. x + y == 4 (as <= and >=), x <= 3 -> opt at (3,1) = 7.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2, 1};
  lp.AddConstraint({1, 1}, 4);
  lp.AddConstraint({-1, -1}, -4);
  lp.AddConstraint({1, 0}, 3);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-9);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 4.0, 1e-9);
}

TEST(SimplexTest, ManyVariablesKnapsackRelaxation) {
  // Fractional knapsack: max sum(v_i x_i), sum(w_i x_i) <= W, x_i <= 1.
  // Items (v, w): (60,10), (100,20), (120,30); W = 50 -> optimum 240.
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {60, 100, 120};
  lp.AddConstraint({10, 20, 30}, 50);
  lp.AddConstraint({1, 0, 0}, 1);
  lp.AddConstraint({0, 1, 0}, 1);
  lp.AddConstraint({0, 0, 1}, 1);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 240.0, 1e-9);
}

TEST(SimplexDeathTest, ObjectiveArityMismatchAborts) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1};  // wrong length
  EXPECT_DEATH(SolveLp(lp), "Check failed");
}

}  // namespace
}  // namespace ddsgraph
