// Wire-protocol robustness fuzzing against a live server (DESIGN.md
// §13/§16): random, truncated and oversized frames, binary garbage and
// byte-mutated valid JSON must never crash or wedge the daemon. The §13
// contract under test: a malformed *frame* desynchronizes the stream, so
// that connection is dropped (and only that connection); malformed
// *JSON* inside an intact frame gets an error response and the
// connection lives on. Runs in the ASan CI filter, so a latent overflow
// in the frame or JSON parser fails loudly here.

#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/socket.h"

namespace ddsgraph {
namespace {

// The seed corpus: every request shape the serve tests speak, valid and
// near-valid — mutation starts from real protocol, not noise.
std::vector<std::string> SeedCorpus() {
  return {
      "{\"graph\": \"uni\", \"algo\": \"core-exact\"}",
      "{\"graph\": \"uni\", \"algo\": \"peel-approx\", \"deadline_ms\": 50}",
      "{\"graph\": \"uni\", \"algo\": \"core-approx\", \"threads\": 2}",
      "{\"graph\": \"uni\", \"weighted\": false, \"id\": 7}",
      "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"+1 2, -2 3\"}",
      "{\"op\": \"health\", \"id\": 5}",
      "{\"op\": \"list_graphs\"}",
      "{\"op\": \"server_stats\"}",
      "{\"graph\": \"nope\"}",
      "{\"graph\": \"uni\", \"algo\": \"nope\"}",
      "{\"graph\": \"uni\", \"deadline_ms\": -1}",
      "{}",
  };
}

class ServeFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddGraph("uni", UniformDigraph(30, 120, 3)).ok());
    server_ = std::make_unique<DdsServer>(&catalog_, ServerOptions{});
    const Result<int> started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    port_ = started.value();
  }

  // The liveness probe between attacks: a fresh connection must still
  // get a healthy answer, or the server lost a thread/crashed.
  void ExpectServerAlive() {
    ServeClient probe;
    ASSERT_TRUE(probe.Connect("127.0.0.1", port_).ok());
    const Result<std::string> health = probe.Call("{\"op\": \"health\"}");
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_NE(health.value().find("\"healthy\": true"), std::string::npos);
  }

  GraphCatalog catalog_;
  std::unique_ptr<DdsServer> server_;
  int port_ = 0;
};

// Byte-mutated valid JSON inside intact frames: per §13 every frame gets
// *some* response (ok or error) on a connection that stays usable.
TEST_F(ServeFuzzTest, MutatedJsonGetsAResponseAndTheConnectionSurvives) {
  std::mt19937_64 rng(0x5EED);
  const std::vector<std::string> corpus = SeedCorpus();
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  for (int iter = 0; iter < 300; ++iter) {
    std::string payload = corpus[rng() % corpus.size()];
    // 1-3 point mutations; printable replacements keep most payloads in
    // JSON's neighborhood, where parser edge cases live.
    const int mutations = 1 + static_cast<int>(rng() % 3);
    for (int m = 0; m < mutations && !payload.empty(); ++m) {
      const size_t at = rng() % payload.size();
      payload[at] = static_cast<char>(' ' + rng() % 95);
    }
    const Result<std::string> response = client.Call(payload);
    ASSERT_TRUE(response.ok())
        << "iter " << iter << " payload: " << payload << " — "
        << response.status().ToString();
    const std::string status =
        FindJsonString(response.value(), "status").value_or("");
    EXPECT_TRUE(status == "ok" || status == "error")
        << "iter " << iter << " response: " << response.value();
  }
  // The whole storm ran on ONE connection — it survived every mutation.
  const Result<std::string> health = client.Call("{\"op\": \"health\"}");
  ASSERT_TRUE(health.ok());
  ExpectServerAlive();
}

// Malformed frames: the stream is desynchronized, so the server must
// drop that connection — and only that connection.
TEST_F(ServeFuzzTest, BadFramesDropTheConnectionNotTheServer) {
  const std::vector<std::string> attacks = {
      "hello there\n",                  // no length header
      "\n",                             // empty header
      "12x\n{}",                        // non-digit in header
      "-5\n{}\n",                       // negative length
      "9999999999999\n",                // header too long (13 digits)
      "67108865\n",                     // over the 64 MiB frame cap
      "5\nab",                          // truncated payload, then close
      "2\n{}X",                         // wrong trailer byte
      "3\n{}\n",                        // length overshoots the payload
      std::string("\x00\xff\xfe\x01\x80garbage\n\n", 14),  // binary noise
  };
  for (const std::string& attack : attacks) {
    const Result<UniqueSocket> sock = TcpConnect("127.0.0.1", port_, 5);
    ASSERT_TRUE(sock.ok());
    // The send may legitimately fail mid-way if the server already
    // dropped us after the malformed prefix.
    (void)SendAll(sock.value().fd(), attack.data(), attack.size());
    // Whatever happens, the server must remain fully in service.
    ExpectServerAlive();
  }
}

// Truncated prefixes of a VALID frame at every cut point: the client
// vanishing mid-frame is the commonest real-world tear.
TEST_F(ServeFuzzTest, TruncatedValidFramesAtEveryOffsetNeverWedge) {
  const std::string payload = "{\"graph\": \"uni\", \"algo\": \"core-exact\"}";
  std::string frame = std::to_string(payload.size());
  frame += '\n';
  frame += payload;
  frame += '\n';
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    const Result<UniqueSocket> sock = TcpConnect("127.0.0.1", port_, 5);
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(SendAll(sock.value().fd(), frame.data(), cut).ok());
    // Close mid-frame (the UniqueSocket destructor) and verify liveness.
  }
  ExpectServerAlive();
}

// Pure-noise storm on many short-lived connections: no grammar at all,
// each connection abandoned immediately.
TEST_F(ServeFuzzTest, RandomByteStormsNeverCrashTheServer) {
  std::mt19937_64 rng(0xF022);
  for (int iter = 0; iter < 100; ++iter) {
    const Result<UniqueSocket> sock = TcpConnect("127.0.0.1", port_, 5);
    ASSERT_TRUE(sock.ok());
    std::string noise(1 + rng() % 256, '\0');
    for (char& c : noise) c = static_cast<char>(rng());
    (void)SendAll(sock.value().fd(), noise.data(), noise.size());
  }
  ExpectServerAlive();
}

// Oversized frame with a fully delivered body: the length cap must
// reject it before buffering 64 MiB, and the connection is dropped while
// the server keeps answering others.
TEST_F(ServeFuzzTest, OversizedFrameIsRejectedWithoutBuffering) {
  const Result<UniqueSocket> sock = TcpConnect("127.0.0.1", port_, 5);
  ASSERT_TRUE(sock.ok());
  const std::string header = "268435456\n";  // 256 MiB claimed
  ASSERT_TRUE(SendAll(sock.value().fd(), header.data(), header.size()).ok());
  // Feed some body; the server should have hung up already or shortly.
  std::string chunk(4096, 'x');
  for (int i = 0; i < 16; ++i) {
    if (!SendAll(sock.value().fd(), chunk.data(), chunk.size()).ok()) break;
  }
  ExpectServerAlive();
}

}  // namespace
}  // namespace ddsgraph
