#include "graph/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ddsgraph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, LoadsSimpleEdgeList) {
  const std::string path = TempPath("simple.txt");
  WriteFile(path,
            "# a comment\n"
            "0 1\n"
            "1\t2\n"
            "\n"
            "% another comment\n"
            "2 0\n");
  const auto loaded = LoadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.NumVertices(), 3u);
  EXPECT_EQ(loaded.value().graph.NumEdges(), 3);
  EXPECT_TRUE(loaded.value().labels.empty());  // ids were already dense
}

TEST_F(IoTest, RemapsSparseLabels) {
  const std::string path = TempPath("sparse.txt");
  WriteFile(path, "100 200\n200 300\n");
  const auto loaded = LoadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const LoadedGraph& lg = loaded.value();
  EXPECT_EQ(lg.graph.NumVertices(), 3u);
  ASSERT_EQ(lg.labels.size(), 3u);
  EXPECT_EQ(lg.labels[0], 100u);
  EXPECT_EQ(lg.labels[1], 200u);
  EXPECT_EQ(lg.labels[2], 300u);
  EXPECT_TRUE(lg.graph.HasEdge(0, 1));
  EXPECT_TRUE(lg.graph.HasEdge(1, 2));
}

TEST_F(IoTest, DropsSelfLoopsAndDuplicates) {
  const std::string path = TempPath("dups.txt");
  WriteFile(path, "0 0\n0 1\n0 1\n");
  const auto loaded = LoadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.NumEdges(), 1);
}

TEST_F(IoTest, MissingFileIsNotFound) {
  const auto loaded = LoadSnapEdgeList(TempPath("does_not_exist.txt"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, MalformedLineIsInvalidArgument) {
  const std::string path = TempPath("bad.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  const auto loaded = LoadSnapEdgeList(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, SnapRoundTrip) {
  const Digraph g = UniformDigraph(40, 150, 5);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveSnapEdgeList(g, path).ok());
  const auto loaded = LoadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.EdgeList(), g.EdgeList());
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Digraph g = RmatDigraph(7, 800, 5);
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().EdgeList(), g.EdgeList());
  EXPECT_EQ(loaded.value().NumVertices(), g.NumVertices());
}

TEST_F(IoTest, LoadsWeightedEdgeList) {
  const std::string path = TempPath("weighted.txt");
  WriteFile(path,
            "# u v w\n"
            "0 1 3\n"
            "1 2\n"       // missing weight column defaults to 1
            "0 1 2\n"     // parallel entry merges by summing
            "2 2 9\n");   // self-loop dropped
  const auto loaded = LoadWeightedEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const WeightedDigraph& g = loaded.value().graph;
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.TotalWeight(), 6);  // (0,1):5 + (1,2):1
  EXPECT_EQ(g.WeightedOutDegree(0), 5);
  EXPECT_TRUE(loaded.value().labels.empty());
}

TEST_F(IoTest, WeightedLoaderRemapsLabelsAndRejectsBadWeights) {
  const std::string sparse = TempPath("weighted_sparse.txt");
  WriteFile(sparse, "100 200 4\n200 300 2\n");
  const auto loaded = LoadWeightedEdgeList(sparse);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().labels.size(), 3u);
  EXPECT_EQ(loaded.value().labels[0], 100u);
  EXPECT_EQ(loaded.value().graph.TotalWeight(), 6);

  // Present-but-malformed weight columns fail strictly instead of being
  // coerced (0 and negatives rejected; "2.5" not truncated; "abc" not 1).
  for (const char* bad_line : {"0 1 0\n", "0 1 -3\n", "0 1 2.5\n",
                               "0 1 abc\n", "0 1 3 17\n"}) {
    const std::string bad = TempPath("weighted_bad.txt");
    WriteFile(bad, bad_line);
    const auto rejected = LoadWeightedEdgeList(bad);
    ASSERT_FALSE(rejected.ok()) << bad_line;
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument)
        << bad_line;
  }
}

TEST_F(IoTest, LoadEdgeListAutoDispatchesOnWeightFlavor) {
  const std::string path = TempPath("auto.txt");
  WriteFile(path, "100 200 4\n200 300 2\n");
  // Unweighted mode ignores the weight column (SNAP files often carry
  // extras); weighted mode consumes it.
  const auto plain = LoadEdgeListAuto(path, /*weighted=*/false);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().weighted);
  EXPECT_EQ(plain.value().graph.NumVertices(), 3u);
  const auto weighted = LoadEdgeListAuto(path, /*weighted=*/true);
  ASSERT_TRUE(weighted.ok());
  EXPECT_TRUE(weighted.value().weighted);
  EXPECT_EQ(weighted.value().weighted_graph.TotalWeight(), 6);
  ASSERT_EQ(weighted.value().labels.size(), 3u);
  EXPECT_EQ(weighted.value().labels[0], 100u);
}

// The shared loader's contract with its front-ends (dds_tool, the serve
// catalog): any failure Status names the offending file.
TEST_F(IoTest, LoadEdgeListAutoNamesTheFileInErrors) {
  const std::string missing = TempPath("does_not_exist.txt");
  for (const bool weighted : {false, true}) {
    const auto loaded = LoadEdgeListAuto(missing, weighted);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
    EXPECT_NE(loaded.status().message().find(missing), std::string::npos)
        << loaded.status().ToString();
  }
  const std::string malformed = TempPath("auto_bad.txt");
  WriteFile(malformed, "0 1 zzz\n");
  const auto bad = LoadEdgeListAuto(malformed, /*weighted=*/true);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find(malformed), std::string::npos)
      << bad.status().ToString();
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("garbage.bin");
  WriteFile(path, "this is not a ddsgraph binary file at all");
  const auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, BinaryRejectsTruncatedFile) {
  const Digraph g = UniformDigraph(10, 20, 1);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  WriteFile(path, bytes.substr(0, bytes.size() / 2));
  const auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace ddsgraph
