#include "util/bucket_queue.h"

#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ddsgraph {
namespace {

TEST(BucketQueueTest, StartsEmpty) {
  BucketQueue q(10, 5);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_FALSE(q.PopMin().has_value());
  EXPECT_FALSE(q.PeekMinKey().has_value());
}

TEST(BucketQueueTest, InsertAndPopInKeyOrder) {
  BucketQueue q(5, 10);
  q.Insert(0, 7);
  q.Insert(1, 3);
  q.Insert(2, 5);
  ASSERT_TRUE(q.PeekMinKey().has_value());
  EXPECT_EQ(*q.PeekMinKey(), 3);
  auto p = q.PopMin();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first, 1u);
  EXPECT_EQ(p->second, 3);
  p = q.PopMin();
  EXPECT_EQ(p->first, 2u);
  p = q.PopMin();
  EXPECT_EQ(p->first, 0u);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueueTest, DecreaseKeyMovesItemForward) {
  BucketQueue q(3, 10);
  q.Insert(0, 9);
  q.Insert(1, 8);
  q.DecreaseKey(0, 1);
  auto p = q.PopMin();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first, 0u);
  EXPECT_EQ(p->second, 1);
}

TEST(BucketQueueTest, DecreaseKeyBelowCursorIsFound) {
  BucketQueue q(3, 10);
  q.Insert(0, 5);
  q.Insert(1, 9);
  EXPECT_EQ(q.PopMin()->first, 0u);  // cursor advanced to 5
  q.DecreaseKey(1, 2);               // below the cursor
  ASSERT_TRUE(q.PeekMinKey().has_value());
  EXPECT_EQ(*q.PeekMinKey(), 2);
  EXPECT_EQ(q.PopMin()->first, 1u);
}

TEST(BucketQueueTest, RemoveSkipsItem) {
  BucketQueue q(3, 10);
  q.Insert(0, 1);
  q.Insert(1, 2);
  q.Remove(0);
  EXPECT_FALSE(q.Contains(0));
  EXPECT_TRUE(q.Contains(1));
  auto p = q.PopMin();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first, 1u);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueueTest, DecrementHelper) {
  BucketQueue q(2, 10);
  q.Insert(0, 4);
  q.Decrement(0);
  q.Decrement(0);
  EXPECT_EQ(q.KeyOf(0), 2);
}

TEST(BucketQueueTest, ZeroKeySupported) {
  BucketQueue q(2, 10);
  q.Insert(0, 0);
  auto p = q.PopMin();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->second, 0);
}

// Randomized comparison against a reference implementation (std::map from
// item to key, min selection by scan).
TEST(BucketQueueTest, MatchesReferenceUnderRandomWorkload) {
  constexpr uint32_t kItems = 64;
  constexpr int64_t kMaxKey = 40;
  Rng rng(2024);
  BucketQueue q(kItems, kMaxKey);
  std::map<uint32_t, int64_t> ref;

  auto ref_min_key = [&]() -> std::optional<int64_t> {
    std::optional<int64_t> best;
    for (const auto& [item, key] : ref) {
      if (!best.has_value() || key < *best) best = key;
    }
    return best;
  };

  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.NextBounded(4));
    if (op == 0) {  // insert
      const uint32_t item = static_cast<uint32_t>(rng.NextBounded(kItems));
      if (ref.count(item) == 0) {
        const int64_t key = static_cast<int64_t>(rng.NextBounded(kMaxKey + 1));
        q.Insert(item, key);
        ref[item] = key;
      }
    } else if (op == 1) {  // decrease
      if (!ref.empty()) {
        auto it = ref.begin();
        std::advance(it, rng.NextBounded(ref.size()));
        if (it->second > 0) {
          const int64_t new_key =
              static_cast<int64_t>(rng.NextBounded(it->second));
          q.DecreaseKey(it->first, new_key);
          it->second = new_key;
        }
      }
    } else if (op == 2) {  // remove
      if (!ref.empty()) {
        auto it = ref.begin();
        std::advance(it, rng.NextBounded(ref.size()));
        q.Remove(it->first);
        ref.erase(it);
      }
    } else {  // pop min: keys must match (items may tie arbitrarily)
      const auto got = q.PopMin();
      const auto want_key = ref_min_key();
      ASSERT_EQ(got.has_value(), want_key.has_value());
      if (got.has_value()) {
        EXPECT_EQ(got->second, *want_key);
        EXPECT_EQ(ref[got->first], got->second);
        ref.erase(got->first);
      }
    }
    ASSERT_EQ(q.Size(), ref.size());
  }
}

}  // namespace
}  // namespace ddsgraph
