// The serving fast paths of DESIGN.md §15, scheduler-level and end to
// end over TCP: response-cache hits bit-identical to direct solves,
// version-keyed invalidation on update (no stale answer after an ack),
// single-flight coalescing, same-graph batching, the health verb, and
// the update-vs-cached-solve-vs-stats race (TSan CI runs this suite).

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dds/engine.h"
#include "dds/solver.h"
#include "graph/generators.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "stream/edge_stream.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

// Blocks the solve that carries it inside its first progress callback
// until Release() — pins a scheduler worker mid-solve deterministically.
// (Progress-carrying requests are uncachable by design, so the gated
// request itself never interacts with the cache; it just occupies the
// worker while other submissions pile up behind it.)
struct SolveGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  DdsProgressCallback AsProgress() {
    return [this](const DdsProgress&) {
      {
        std::lock_guard<std::mutex> lock(mu);
        entered = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return released; });
      return true;
    };
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

struct ResponseCollector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ServeResponse> responses;

  ServeCallback AsCallback() {
    return [this](ServeResponse response) {
      {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(response));
      }
      cv.notify_all();
    };
  }
  void WaitCount(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this, n] { return responses.size() >= n; });
  }
};

// The schedule-independent prefix of a solution's JSON — the same slice
// SolutionSliceForCompare extracts from a wire response.
std::string SliceOf(const DdsSolution& solution) {
  const std::string json = SolutionJson(solution);
  const size_t stats = json.find(", \"stats\"");
  EXPECT_NE(stats, std::string::npos) << json;
  return json.substr(0, stats);
}

ServeRequest MakeRequest(const std::string& graph, DdsAlgorithm algorithm) {
  ServeRequest request;
  request.graph = graph;
  request.request.algorithm = algorithm;
  return request;
}

// SchedulerOptions with the cache armed (the field defaults keep it off).
SchedulerOptions CachedOptions(int workers, int queue_capacity) {
  SchedulerOptions options;
  options.workers = workers;
  options.queue_capacity = queue_capacity;
  options.cache_bytes = 1u << 20;
  return options;
}

// ----------------------------------------------------- scheduler + cache

TEST(ServeCacheTest, HitIsBitIdenticalToTheDirectSolve) {
  const Digraph g = UniformDigraph(60, 300, 3);
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", g).ok());
  RequestScheduler scheduler(&catalog, CachedOptions(2, 16));
  scheduler.Start();

  ResponseCollector first, second;
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("uni", DdsAlgorithm::kCoreExact),
                          first.AsCallback())
                  .ok());
  first.WaitCount(1);
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("uni", DdsAlgorithm::kCoreExact),
                          second.AsCallback())
                  .ok());
  // A hit answers synchronously inside Submit — no WaitCount needed.
  ASSERT_EQ(second.responses.size(), 1u);
  scheduler.Stop();

  const ServeResponse& miss = first.responses[0];
  const ServeResponse& hit = second.responses[0];
  ASSERT_TRUE(miss.status.ok());
  ASSERT_TRUE(hit.status.ok());
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_FALSE(hit.coalesced);
  EXPECT_EQ(miss.version, 0);
  EXPECT_EQ(hit.version, 0);

  DdsEngine direct(g);
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreExact;
  const Result<DdsSolution> expected = direct.Solve(request);
  ASSERT_TRUE(expected.ok());
  const std::string want = SliceOf(expected.value());
  EXPECT_EQ(SliceOf(miss.solution), want);
  EXPECT_EQ(SliceOf(hit.solution), want);

  // The hit's provenance markers travel inside the stats too, with the
  // latency split zeroed (it cost a lookup, not a queue+solve).
  EXPECT_TRUE(hit.solution.stats.cache_hit);
  EXPECT_DOUBLE_EQ(hit.solution.stats.queue_ms, 0);
  EXPECT_DOUBLE_EQ(hit.solution.stats.solve_ms, 0);
  EXPECT_DOUBLE_EQ(hit.queue_ms, 0);
  EXPECT_DOUBLE_EQ(hit.solve_ms, 0);

  // One engine solve served both requests; the hit never reached the
  // accepted/served path.
  const CatalogEntry* entry = catalog.Find("uni");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->num_solves(), 1);
  EXPECT_EQ(scheduler.accepted(), 1);
  EXPECT_EQ(scheduler.served(), 1);
  const ResponseCacheCounters counters = scheduler.cache_counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.entries, 1);
}

TEST(ServeCacheTest, UpdateInvalidatesAndNewVersionSolvesFresh) {
  const uint32_t n = 40;
  const Digraph g = UniformDigraph(n, 160, 3);
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", g).ok());
  RequestScheduler scheduler(&catalog, CachedOptions(1, 16));
  scheduler.Start();

  ResponseCollector before;
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("uni", DdsAlgorithm::kCoreExact),
                          before.AsCallback())
                  .ok());
  before.WaitCount(1);
  EXPECT_EQ(before.responses[0].version, 0);

  // Plant a dense block the base graph does not have, exactly like the
  // wire-level update path would.
  CatalogEntry* entry = catalog.Find("uni");
  ASSERT_NE(entry, nullptr);
  EdgeBatch block;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 30; v < 34; ++v) block.push_back(EdgeOp::Insert(u, v));
  }
  const auto applied = entry->ApplyEdgeBatch(block);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().version, 1);
  EXPECT_EQ(entry->cached_version(), 1);  // the lock-free mirror moved
  EXPECT_EQ(scheduler.InvalidateGraph("uni"), 1);

  // The next identical request must miss (new version in the key) and
  // solve the updated graph — equal to a direct engine on a statically
  // rebuilt merge, the PR 8 overlay-identity contract.
  ResponseCollector after;
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("uni", DdsAlgorithm::kCoreExact),
                          after.AsCallback())
                  .ok());
  after.WaitCount(1);
  const ServeResponse& fresh = after.responses[0];
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.version, 1);

  std::vector<Edge> merged = g.EdgeList();
  for (const EdgeOp& op : block) merged.emplace_back(op.from, op.to);
  const Digraph updated = Digraph::FromEdges(n, std::move(merged));
  DdsEngine direct(updated);
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreExact;
  const Result<DdsSolution> expected = direct.Solve(request);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(SliceOf(fresh.solution), SliceOf(expected.value()));
  // The stale version-0 slice must differ — the planted block raises the
  // optimum, so serving it would have been an observable wrong answer.
  EXPECT_NE(SliceOf(before.responses[0].solution),
            SliceOf(expected.value()));

  // And the new version is now cached: a third request hits at v1.
  ResponseCollector third;
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("uni", DdsAlgorithm::kCoreExact),
                          third.AsCallback())
                  .ok());
  ASSERT_EQ(third.responses.size(), 1u);
  EXPECT_TRUE(third.responses[0].cache_hit);
  EXPECT_EQ(third.responses[0].version, 1);
  EXPECT_EQ(SliceOf(third.responses[0].solution),
            SliceOf(expected.value()));
  scheduler.Stop();
}

TEST(ServeCacheTest, SingleFlightCoalescesIdenticalRequests) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("pin", UniformDigraph(30, 150, 5)).ok());
  const Digraph g = UniformDigraph(60, 300, 3);
  ASSERT_TRUE(catalog.AddGraph("uni", g).ok());
  // One worker so the gated solve on "pin" blocks everything behind it.
  RequestScheduler scheduler(&catalog, CachedOptions(1, 16));
  scheduler.Start();

  SolveGate gate;
  ResponseCollector pin_done;
  ServeRequest gated = MakeRequest("pin", DdsAlgorithm::kCoreExact);
  gated.request.progress = gate.AsProgress();
  ASSERT_TRUE(scheduler.Submit(std::move(gated), pin_done.AsCallback()).ok());
  gate.WaitEntered();

  // Three identical cachable requests: the first takes the queue slot,
  // the other two attach to its flight.
  ResponseCollector collector;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(MakeRequest("uni", DdsAlgorithm::kCoreExact),
                            collector.AsCallback())
                    .ok());
  }
  EXPECT_EQ(scheduler.coalesced(), 2);
  EXPECT_EQ(scheduler.queued(), 1);  // waiters hold no queue slots

  gate.Release();
  collector.WaitCount(3);
  scheduler.Stop();

  DdsEngine direct(g);
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreExact;
  const Result<DdsSolution> expected = direct.Solve(request);
  ASSERT_TRUE(expected.ok());
  const std::string want = SliceOf(expected.value());

  int leaders = 0, followers = 0;
  for (const ServeResponse& r : collector.responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(SliceOf(r.solution), want);  // identical responses for all
    EXPECT_FALSE(r.cache_hit);
    EXPECT_EQ(r.version, 0);
    if (r.coalesced) {
      ++followers;
      EXPECT_TRUE(r.solution.stats.coalesced);
    } else {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(followers, 2);

  // One solve fanned out to three waiters.
  const CatalogEntry* entry = catalog.Find("uni");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->num_solves(), 1);
  EXPECT_EQ(scheduler.accepted(), 4);  // pin + leader + 2 waiters
  EXPECT_EQ(scheduler.served(), 4);
}

TEST(ServeBatchingTest, SameGraphFlightsRunAsOneGroup) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("pin", UniformDigraph(30, 150, 5)).ok());
  const Digraph a = UniformDigraph(50, 250, 3);
  const Digraph b = UniformDigraph(50, 250, 11);
  ASSERT_TRUE(catalog.AddGraph("a", a).ok());
  ASSERT_TRUE(catalog.AddGraph("b", b).ok());
  // Batching needs no cache; distinct algorithms per graph keep
  // single-flight out of the picture even with one enabled.
  SchedulerOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  RequestScheduler scheduler(&catalog, options);
  scheduler.Start();

  SolveGate gate;
  ResponseCollector collector;
  ServeRequest gated = MakeRequest("pin", DdsAlgorithm::kCoreExact);
  gated.request.progress = gate.AsProgress();
  ASSERT_TRUE(scheduler.Submit(std::move(gated), collector.AsCallback()).ok());
  gate.WaitEntered();

  // Interleave two graphs; the worker should reassemble per-graph groups.
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("a", DdsAlgorithm::kPeelApprox),
                          collector.AsCallback())
                  .ok());
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("b", DdsAlgorithm::kPeelApprox),
                          collector.AsCallback())
                  .ok());
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("a", DdsAlgorithm::kCoreApprox),
                          collector.AsCallback())
                  .ok());
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("b", DdsAlgorithm::kCoreApprox),
                          collector.AsCallback())
                  .ok());
  gate.Release();
  collector.WaitCount(5);
  scheduler.Stop();

  EXPECT_EQ(scheduler.batches(), 2);  // {a,a} and {b,b}
  EXPECT_EQ(scheduler.batched(), 4);
  EXPECT_EQ(scheduler.served(), 5);

  // Grouping must not change any answer.
  for (const ServeResponse& r : collector.responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
  const std::vector<std::pair<const Digraph*, DdsAlgorithm>> expected_set =
      {{&a, DdsAlgorithm::kPeelApprox},
       {&a, DdsAlgorithm::kCoreApprox},
       {&b, DdsAlgorithm::kPeelApprox},
       {&b, DdsAlgorithm::kCoreApprox}};
  for (const auto& [graph, algo] : expected_set) {
    DdsEngine direct(*graph);
    DdsRequest request;
    request.algorithm = algo;
    const Result<DdsSolution> expected = direct.Solve(request);
    ASSERT_TRUE(expected.ok());
    const std::string want = SliceOf(expected.value());
    int matches = 0;
    for (const ServeResponse& r : collector.responses) {
      if (SliceOf(r.solution) == want) ++matches;
    }
    EXPECT_GE(matches, 1) << "no response matched a direct solve";
  }
}

// ------------------------------------------------------------ wire level

class ServeCacheServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uni_ = UniformDigraph(40, 160, 3);
    ASSERT_TRUE(catalog_.AddGraph("uni", uni_).ok());
  }

  void StartAndConnect(ServeClient* client, size_t cache_bytes) {
    ServerOptions options;
    options.scheduler.cache_bytes = cache_bytes;
    server_ = std::make_unique<DdsServer>(&catalog_, options);
    const Result<int> port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    ASSERT_TRUE(client->Connect("127.0.0.1", port.value()).ok());
  }

  std::string Call(ServeClient* client, const std::string& request) {
    const Result<std::string> response = client->Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? response.value() : std::string();
  }

  Digraph uni_;
  GraphCatalog catalog_;
  std::unique_ptr<DdsServer> server_;
};

TEST_F(ServeCacheServerTest, CacheHitsInvalidationAndStatsOverTcp) {
  ServeClient client;
  StartAndConnect(&client, 1u << 20);
  const std::string solve = "{\"graph\": \"uni\", \"algo\": \"core-exact\"}";

  const std::string miss = Call(&client, solve);
  ASSERT_EQ(FindJsonString(miss, "status").value_or(""), "ok") << miss;
  EXPECT_NE(miss.find("\"cache_hit\": false"), std::string::npos);
  EXPECT_NE(miss.find("\"version\": 0"), std::string::npos);

  const std::string hit = Call(&client, solve);
  EXPECT_NE(hit.find("\"cache_hit\": true"), std::string::npos) << hit;
  // Bit-identical to the solve it memoizes, through the full wire stack.
  const Result<std::string> miss_slice = SolutionSliceForCompare(miss);
  const Result<std::string> hit_slice = SolutionSliceForCompare(hit);
  ASSERT_TRUE(miss_slice.ok() && hit_slice.ok());
  EXPECT_EQ(miss_slice.value(), hit_slice.value());

  // An acked update must never be followed by the old answer.
  const std::string update = Call(
      &client,
      "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"+0 30, +0 31, "
      "+1 30, +1 31\"}");
  ASSERT_EQ(FindJsonString(update, "status").value_or(""), "ok") << update;

  const std::string fresh = Call(&client, solve);
  EXPECT_NE(fresh.find("\"cache_hit\": false"), std::string::npos) << fresh;
  EXPECT_NE(fresh.find("\"version\": 1"), std::string::npos) << fresh;

  const std::string stats = Call(&client, "{\"op\": \"server_stats\"}");
  EXPECT_EQ(FindJsonNumber(stats, "cache_hits").value_or(-1), 1) << stats;
  EXPECT_EQ(FindJsonNumber(stats, "cache_misses").value_or(-1), 2);
  EXPECT_GE(FindJsonNumber(stats, "cache_invalidations").value_or(-1), 1);
  EXPECT_EQ(FindJsonNumber(stats, "cache_entries").value_or(-1), 1);
  EXPECT_NE(stats.find("\"cache_enabled\": true"), std::string::npos);
  server_->Stop();
}

TEST_F(ServeCacheServerTest, HealthVerbAndItsStrictSchema) {
  ServeClient client;
  StartAndConnect(&client, /*cache_bytes=*/0);

  const std::string health =
      Call(&client, "{\"op\": \"health\", \"id\": 5}");
  EXPECT_EQ(FindJsonString(health, "status").value_or(""), "ok") << health;
  EXPECT_EQ(FindJsonString(health, "op").value_or(""), "health");
  EXPECT_NE(health.find("\"healthy\": true"), std::string::npos);
  EXPECT_NE(health.find("\"accepting\": true"), std::string::npos);
  EXPECT_EQ(FindJsonNumber(health, "num_graphs").value_or(-1), 1);
  EXPECT_EQ(FindJsonNumber(health, "queued").value_or(-1), 0);
  EXPECT_NE(health.find("\"id\": 5"), std::string::npos);

  // Strict per-verb schema: health takes no solve keys.
  for (const char* bad :
       {"{\"op\": \"health\", \"graph\": \"uni\"}",
        "{\"op\": \"health\", \"algo\": \"core-exact\"}",
        "{\"op\": \"health\", \"deadline_ms\": 5}",
        "{\"op\": \"health\", \"edges\": \"+1 2\"}"}) {
    const std::string r = Call(&client, bad);
    EXPECT_EQ(FindJsonString(r, "code").value_or(""), "INVALID_ARGUMENT")
        << bad;
  }
  // The unknown-op message now names the verb.
  const std::string unknown = Call(&client, "{\"op\": \"helth\"}");
  EXPECT_NE(unknown.find("health"), std::string::npos) << unknown;
  server_->Stop();
}

// The §15 race: an updater mutating a graph, a solver issuing identical
// cachable requests (hits, misses and coalesces all possible), and an
// observer polling stats/health — all over concurrent connections. The
// staleness proof: the solver snapshots the highest *acked* update
// version before each solve and asserts the response's version is at
// least that — a cached stale answer would violate it. Run under TSan
// in CI.
TEST_F(ServeCacheServerTest, UpdateVsCachedSolveVsStatsRace) {
  ServerOptions options;
  options.scheduler.workers = 2;
  options.scheduler.cache_bytes = 1u << 20;
  server_ = std::make_unique<DdsServer>(&catalog_, options);
  const Result<int> port = server_->Start();
  ASSERT_TRUE(port.ok());

  constexpr int kUpdates = 10;
  constexpr int kSolves = 24;
  std::atomic<int64_t> acked_version{0};
  std::vector<std::string> failures(3);

  std::thread updater([&] {
    ServeClient client;
    if (!client.Connect("127.0.0.1", port.value()).ok()) {
      failures[0] = "connect";
      return;
    }
    Rng rng(23);
    for (int i = 0; i < kUpdates; ++i) {
      EdgeBatch batch;
      for (int k = 0; k < 4; ++k) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(40));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(40));
        if (u == v) continue;
        batch.push_back(rng.NextBounded(4) == 0 ? EdgeOp::Delete(u, v)
                                                : EdgeOp::Insert(u, v));
      }
      if (batch.empty()) batch.push_back(EdgeOp::Insert(0, 1));
      const Result<std::string> r = client.Call(
          "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"" +
          FormatEdgeOps(batch) + "\"}");
      if (!r.ok() ||
          FindJsonString(r.value(), "status").value_or("") != "ok") {
        failures[0] = r.ok() ? r.value() : r.status().ToString();
        return;
      }
      const int64_t version = static_cast<int64_t>(
          FindJsonNumber(r.value(), "version").value_or(0));
      // The ack is the linearization point clients reason from.
      acked_version.store(version, std::memory_order_release);
    }
  });
  std::thread solver([&] {
    ServeClient client;
    if (!client.Connect("127.0.0.1", port.value()).ok()) {
      failures[1] = "connect";
      return;
    }
    for (int i = 0; i < kSolves; ++i) {
      const int64_t floor = acked_version.load(std::memory_order_acquire);
      const Result<std::string> r =
          client.Call("{\"graph\": \"uni\", \"algo\": \"core-approx\"}");
      if (!r.ok() ||
          FindJsonString(r.value(), "status").value_or("") != "ok") {
        failures[1] = r.ok() ? r.value() : r.status().ToString();
        return;
      }
      const double version =
          FindJsonNumber(r.value(), "version").value_or(-1);
      if (version < static_cast<double>(floor)) {
        failures[1] = "stale response: version " +
                      std::to_string(version) + " after ack " +
                      std::to_string(floor);
        return;
      }
    }
  });
  std::thread observer([&] {
    ServeClient client;
    if (!client.Connect("127.0.0.1", port.value()).ok()) {
      failures[2] = "connect";
      return;
    }
    for (int i = 0; i < 12; ++i) {
      const std::string op = i % 2 == 0 ? "server_stats" : "health";
      const Result<std::string> r = client.Call("{\"op\": \"" + op + "\"}");
      if (!r.ok() ||
          FindJsonString(r.value(), "status").value_or("") != "ok") {
        failures[2] = r.ok() ? r.value() : r.status().ToString();
        return;
      }
    }
  });
  updater.join();
  solver.join();
  observer.join();
  server_->Stop();
  EXPECT_EQ(failures[0], "");
  EXPECT_EQ(failures[1], "");
  EXPECT_EQ(failures[2], "");

  const CatalogEntry* entry = catalog_.Find("uni");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->version(), kUpdates);
  EXPECT_EQ(entry->cached_version(), kUpdates);
}

}  // namespace
}  // namespace ddsgraph
