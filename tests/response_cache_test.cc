// Unit coverage for the serve-layer response cache (DESIGN.md §15):
// canonical request keys, the cachability rule, the LRU byte budget,
// and the two invalidation paths (insert-time prune of older versions,
// explicit per-graph drop).

#include "serve/response_cache.h"

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "dds/engine.h"

namespace ddsgraph {
namespace {

DdsSolution MakeSolution(double density, size_t side = 4) {
  DdsSolution solution;
  solution.density = density;
  solution.lower_bound = density;
  solution.upper_bound = density;
  for (size_t i = 0; i < side; ++i) {
    solution.pair.s.push_back(static_cast<VertexId>(i));
    solution.pair.t.push_back(static_cast<VertexId>(i + side));
  }
  solution.pair.s.shrink_to_fit();
  solution.pair.t.shrink_to_fit();
  return solution;
}

TEST(ResponseCacheTest, CanonicalKeyCoversConsumedOptionsOnly) {
  DdsRequest a;
  a.algorithm = DdsAlgorithm::kCoreExact;
  DdsRequest b = a;
  EXPECT_EQ(CanonicalRequestKey(a), CanonicalRequestKey(b));

  // Options the algorithm consumes split the key...
  b.threads = 2;
  EXPECT_NE(CanonicalRequestKey(a), CanonicalRequestKey(b));
  b = a;
  b.exact.core_pruning = false;
  EXPECT_NE(CanonicalRequestKey(a), CanonicalRequestKey(b));
  b = a;
  b.algorithm = DdsAlgorithm::kPeelApprox;
  EXPECT_NE(CanonicalRequestKey(a), CanonicalRequestKey(b));

  // ...options it ignores do not: peel epsilon is dead weight on an
  // exact request, so both requests would solve identically.
  b = a;
  b.peel.epsilon = 0.5;
  EXPECT_EQ(CanonicalRequestKey(a), CanonicalRequestKey(b));

  // Epsilons do split the approximations.
  DdsRequest p;
  p.algorithm = DdsAlgorithm::kPeelApprox;
  DdsRequest q = p;
  q.peel.epsilon = 0.2;
  EXPECT_NE(CanonicalRequestKey(p), CanonicalRequestKey(q));

  // kFlowExact overlays its defining preset on ExactOptions, so a flag
  // the preset overrides cannot split the key — both requests run the
  // same solve (ExactPresetFor forces divide_and_conquer off).
  DdsRequest f;
  f.algorithm = DdsAlgorithm::kFlowExact;
  DdsRequest g = f;
  g.exact.divide_and_conquer = !f.exact.divide_and_conquer;
  EXPECT_EQ(CanonicalRequestKey(f), CanonicalRequestKey(g));
}

TEST(ResponseCacheTest, CachabilityExcludesDeadlinesAndProgress) {
  DdsRequest request;
  EXPECT_TRUE(IsCachableRequest(request));
  request.deadline_seconds = 5.0;
  EXPECT_FALSE(IsCachableRequest(request));
  request = DdsRequest{};
  request.progress = [](const DdsProgress&) { return true; };
  EXPECT_FALSE(IsCachableRequest(request));
}

TEST(ResponseCacheTest, HitsMissesAndLruRecency) {
  ResponseCache cache(ResponseCacheOptions{1u << 20});
  const DdsSolution solution = MakeSolution(2.5);
  EXPECT_FALSE(cache.Lookup("g", 0, "k1").has_value());
  cache.Insert("g", 0, "k1", solution);

  const auto hit = cache.Lookup("g", 0, "k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->density, 2.5);
  EXPECT_EQ(hit->pair.s, solution.pair.s);
  EXPECT_EQ(hit->pair.t, solution.pair.t);

  // Every key component isolates: other request, version, or graph miss.
  EXPECT_FALSE(cache.Lookup("g", 0, "k2").has_value());
  EXPECT_FALSE(cache.Lookup("g", 1, "k1").has_value());
  EXPECT_FALSE(cache.Lookup("h", 0, "k1").has_value());

  const ResponseCacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 4);
  EXPECT_EQ(counters.entries, 1);
  EXPECT_GT(counters.bytes, 0);
}

TEST(ResponseCacheTest, ByteBudgetEvictsColdestFirst) {
  const DdsSolution solution = MakeSolution(1.0);
  // Keys "ka"/"kb"/"kc" are the same length, so all entries charge the
  // same bytes; budget exactly two of them.
  const size_t entry_bytes = std::string("g\x1f") // graph + separator
                                 .size() +
                             std::string("0\x1f" "ka").size() +
                             ApproxSolutionBytes(solution);
  ResponseCache cache(ResponseCacheOptions{2 * entry_bytes});
  cache.Insert("g", 0, "ka", solution);
  cache.Insert("g", 0, "kb", solution);
  EXPECT_EQ(cache.Counters().entries, 2);

  // Touch "ka" so "kb" is the LRU tail, then force an eviction.
  EXPECT_TRUE(cache.Lookup("g", 0, "ka").has_value());
  cache.Insert("g", 0, "kc", solution);
  EXPECT_TRUE(cache.Lookup("g", 0, "ka").has_value());
  EXPECT_FALSE(cache.Lookup("g", 0, "kb").has_value());
  EXPECT_TRUE(cache.Lookup("g", 0, "kc").has_value());
  const ResponseCacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.evictions, 1);
  EXPECT_EQ(counters.entries, 2);
  EXPECT_LE(static_cast<size_t>(counters.bytes), 2 * entry_bytes);
}

// `recent_evictions` is the health verb's input: it must report live
// pressure, then decay to zero once the pressure stops — the cumulative
// counter would brand the server "degraded" forever after its first
// steady-state eviction.
TEST(ResponseCacheTest, RecentEvictionsDecayAfterTheWindow) {
  const DdsSolution solution = MakeSolution(1.0);
  const size_t entry_bytes = std::string("g\x1f").size() +
                             std::string("0\x1f" "ka").size() +
                             ApproxSolutionBytes(solution);
  ResponseCacheOptions options;
  options.max_bytes = entry_bytes;  // any second insert evicts
  options.eviction_window_s = 0.05;
  ResponseCache cache(options);
  cache.Insert("g", 0, "ka", solution);
  cache.Insert("g", 0, "kb", solution);
  ResponseCacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.evictions, 1);
  EXPECT_EQ(counters.recent_evictions, 1);

  // Two full windows with no eviction: the recent count reads zero
  // while the cumulative one stays put.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  counters = cache.Counters();
  EXPECT_EQ(counters.evictions, 1);
  EXPECT_EQ(counters.recent_evictions, 0);
}

TEST(ResponseCacheTest, OversizedEntryIsNotInserted) {
  const DdsSolution big = MakeSolution(1.0, /*side=*/256);
  ResponseCache cache(ResponseCacheOptions{ApproxSolutionBytes(big) / 2});
  cache.Insert("g", 0, "k", big);
  EXPECT_EQ(cache.Counters().entries, 0);
  EXPECT_FALSE(cache.Lookup("g", 0, "k").has_value());
}

TEST(ResponseCacheTest, InsertPrunesOlderVersionsButNeverNewer) {
  ResponseCache cache(ResponseCacheOptions{1u << 20});
  cache.Insert("g", 0, "k1", MakeSolution(1.0));
  cache.Insert("g", 0, "k2", MakeSolution(1.5));
  cache.Insert("h", 0, "k1", MakeSolution(3.0));

  // Version 1 arriving drops both version-0 entries of "g" only.
  cache.Insert("g", 1, "k1", MakeSolution(2.0));
  EXPECT_FALSE(cache.Lookup("g", 0, "k1").has_value());
  EXPECT_FALSE(cache.Lookup("g", 0, "k2").has_value());
  EXPECT_TRUE(cache.Lookup("g", 1, "k1").has_value());
  EXPECT_TRUE(cache.Lookup("h", 0, "k1").has_value());
  EXPECT_EQ(cache.Counters().invalidations, 2);

  // A late insert from a solve that raced an update (older version)
  // must not wipe the newer entry.
  cache.Insert("g", 0, "k1", MakeSolution(1.0));
  EXPECT_TRUE(cache.Lookup("g", 1, "k1").has_value());
}

TEST(ResponseCacheTest, InvalidateGraphDropsAllItsVersions) {
  ResponseCache cache(ResponseCacheOptions{1u << 20});
  // Newer first, then a late older insert: the only order under which
  // two versions of one graph coexist (insert-time pruning only runs
  // against *older* entries).
  cache.Insert("g", 1, "k1", MakeSolution(2.0));
  cache.Insert("g", 0, "k1", MakeSolution(1.0));
  cache.Insert("h", 0, "k1", MakeSolution(3.0));
  EXPECT_EQ(cache.InvalidateGraph("g"), 2);
  EXPECT_EQ(cache.InvalidateGraph("g"), 0);  // idempotent
  EXPECT_FALSE(cache.Lookup("g", 1, "k1").has_value());
  EXPECT_FALSE(cache.Lookup("g", 0, "k1").has_value());
  EXPECT_TRUE(cache.Lookup("h", 0, "k1").has_value());
  const ResponseCacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.invalidations, 2);  // both explicit
  EXPECT_EQ(counters.entries, 1);
}

TEST(ResponseCacheTest, ReinsertKeepsTheIncumbentValue) {
  ResponseCache cache(ResponseCacheOptions{1u << 20});
  cache.Insert("g", 0, "k", MakeSolution(1.0));
  // Racing duplicate solves insert identical values; first-wins makes
  // that visible as a no-op.
  cache.Insert("g", 0, "k", MakeSolution(9.0));
  const auto hit = cache.Lookup("g", 0, "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->density, 1.0);
  EXPECT_EQ(cache.Counters().entries, 1);
}

}  // namespace
}  // namespace ddsgraph
