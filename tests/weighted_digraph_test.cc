#include "graph/digraph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ddsgraph {
namespace {

TEST(WeightedDigraphTest, EmptyGraph) {
  WeightedDigraph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.TotalWeight(), 0);
}

TEST(WeightedDigraphTest, BasicAccessors) {
  const WeightedDigraph g = WeightedDigraph::FromEdges(
      3, {{0, 1, 2}, {0, 2, 5}, {1, 2, 1}});
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_EQ(g.TotalWeight(), 8);
  EXPECT_EQ(g.WeightedOutDegree(0), 7);
  EXPECT_EQ(g.WeightedInDegree(2), 6);
  EXPECT_EQ(g.MaxWeightedOutDegree(), 7);
  EXPECT_EQ(g.MaxWeightedInDegree(), 6);
}

TEST(WeightedDigraphTest, ParallelEdgesMergeBySummingWeights) {
  const WeightedDigraph g =
      WeightedDigraph::FromEdges(2, {{0, 1, 2}, {0, 1, 3}, {0, 1, 1}});
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.TotalWeight(), 6);
  EXPECT_EQ(g.OutWeights(0)[0], 6);
}

TEST(WeightedDigraphTest, SelfLoopsAndNonPositiveWeightsDropped) {
  const WeightedDigraph g = WeightedDigraph::FromEdges(
      3, {{0, 0, 4}, {0, 1, 0}, {1, 2, -2}, {0, 1, 3}});
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.TotalWeight(), 3);
}

TEST(WeightedDigraphTest, FromDigraphHasUnitWeights) {
  const Digraph base = UniformDigraph(30, 120, 7);
  const WeightedDigraph g = WeightedDigraph::FromDigraph(base);
  EXPECT_EQ(g.NumEdges(), base.NumEdges());
  EXPECT_EQ(g.TotalWeight(), base.NumEdges());
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    EXPECT_EQ(g.WeightedOutDegree(v), base.OutDegree(v));
    EXPECT_EQ(g.WeightedInDegree(v), base.InDegree(v));
  }
}

TEST(WeightedDigraphTest, ReversedPreservesWeights) {
  const WeightedDigraph g =
      WeightedDigraph::FromEdges(3, {{0, 1, 2}, {1, 2, 7}});
  const WeightedDigraph r = g.Reversed();
  EXPECT_EQ(r.TotalWeight(), g.TotalWeight());
  EXPECT_EQ(r.WeightedOutDegree(2), 7);
  EXPECT_EQ(r.WeightedInDegree(0), 2);
  // Double reversal round-trips.
  EXPECT_EQ(r.Reversed().EdgeList(), g.EdgeList());
}

TEST(WeightedDigraphTest, EdgeListSortedAndMerged) {
  const WeightedDigraph g = WeightedDigraph::FromEdges(
      3, {{2, 0, 1}, {0, 2, 4}, {0, 1, 2}});
  const std::vector<WeightedEdge> edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (WeightedEdge{0, 1, 2}));
  EXPECT_EQ(edges[1], (WeightedEdge{0, 2, 4}));
  EXPECT_EQ(edges[2], (WeightedEdge{2, 0, 1}));
}

TEST(WeightedDigraphDeathTest, OutOfRangeEndpointAborts) {
  EXPECT_DEATH(WeightedDigraph::FromEdges(2, {{0, 2, 1}}), "Check failed");
}

}  // namespace
}  // namespace ddsgraph
