// Crash recovery for the persistent serving catalog (DESIGN.md §16).
//
// The contract under test: with fsync=always, an acked ApplyEdgeBatch is
// durable, and after a crash at *any* instruction of the durability path
// the recovered catalog solves bit-identically to a never-crashed mirror
// at the recovered version — which is never below the highest acked one.
// Crashes are real process deaths: a forked child arms an abort-mode
// failpoint (destructor-free `_exit`, kill -9 at syscall granularity),
// reports each ack through a pipe, and dies mid-path; the parent then
// recovers from the surviving files.

#include <sys/wait.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dds/solver.h"
#include "graph/generators.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/wal.h"
#include "stream/edge_stream.h"
#include "util/failpoint.h"

namespace ddsgraph {
namespace {

// Blocks the solve that carries it inside its first progress callback
// until Release() — pins the entry mutex mid-solve deterministically.
struct SolveGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  DdsProgressCallback AsProgress() {
    return [this](const DdsProgress&) {
      {
        std::lock_guard<std::mutex> lock(mu);
        entered = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return released; });
      return true;
    };
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

Digraph BaseGraph() { return UniformDigraph(30, 120, 3); }

// The deterministic update stream both the crashing child and the
// never-crashed mirror replay: batch i is a pure function of i.
EdgeBatch BatchFor(int64_t i) {
  const auto v = [](int64_t x) {
    return static_cast<VertexId>(((x % 30) + 30) % 30);
  };
  EdgeBatch batch;
  batch.push_back(EdgeOp::Insert(v(i * 7), v(i * 11 + 1)));
  batch.push_back(EdgeOp::Insert(v(i * 3 + 2), v(i * 5 + 4)));
  if (i % 2 == 0) batch.push_back(EdgeOp::Delete(v((i - 1) * 7), v((i - 1) * 11 + 1)));
  return batch;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/recovery_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

PersistOptions PersistAt(const std::string& dir,
                         int64_t checkpoint_bytes = 0) {
  PersistOptions persist;
  persist.data_dir = dir;
  persist.checkpoint_bytes = checkpoint_bytes;
  return persist;
}

// The schedule-independent slice of a solve on `entry` — what
// "bit-identical solves" means here (stats carry wall times).
std::string SolveSlice(const CatalogEntry* entry) {
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreExact;
  const Result<DdsSolution> solution = entry->Solve(request);
  EXPECT_TRUE(solution.ok()) << solution.status().ToString();
  if (!solution.ok()) return std::string();
  const std::string json =
      SolutionJson(solution.value(), entry->labels());
  const size_t stats = json.find(", \"stats\"");
  EXPECT_NE(stats, std::string::npos);
  return json.substr(0, stats);
}

// A never-crashed in-memory twin: same base graph, batches 1..version
// applied through the same ApplyEdgeBatch path.
std::string MirrorSolveSliceAt(int64_t version) {
  GraphCatalog mirror;
  EXPECT_TRUE(mirror.AddGraph("g", BaseGraph()).ok());
  CatalogEntry* entry = mirror.Find("g");
  for (int64_t i = 1; i <= version; ++i) {
    const auto applied = entry->ApplyEdgeBatch(BatchFor(i));
    EXPECT_TRUE(applied.ok()) << applied.status().ToString();
  }
  EXPECT_EQ(entry->version(), version);
  return SolveSlice(entry);
}

class RecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DeactivateAll(); }
};

// ------------------------------------------------- clean-restart basics

TEST_F(RecoveryTest, PersistenceRoundTripAcrossARestart) {
  const std::string dir = FreshDir("roundtrip");
  int64_t version = 0;
  {
    GraphCatalog catalog;
    ASSERT_TRUE(catalog.EnablePersistence(PersistAt(dir)).ok());
    ASSERT_TRUE(catalog.AddGraph("g", BaseGraph()).ok());
    CatalogEntry* entry = catalog.Find("g");
    ASSERT_TRUE(entry->persistent());
    for (int64_t i = 1; i <= 5; ++i) {
      const auto applied = entry->ApplyEdgeBatch(BatchFor(i));
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      version = applied.value().version;
    }
    EXPECT_EQ(version, 5);
  }  // orderly close — no crash

  GraphCatalog recovered;
  ASSERT_TRUE(recovered.EnablePersistence(PersistAt(dir)).ok());
  std::vector<std::string> names;
  ASSERT_TRUE(recovered.RecoverAll(&names).ok());
  ASSERT_EQ(names, std::vector<std::string>{"g"});
  CatalogEntry* entry = recovered.Find("g");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->version(), 5);
  EXPECT_EQ(SolveSlice(entry), MirrorSolveSliceAt(5));
  // The recovered entry is live: it keeps accepting and logging updates.
  ASSERT_TRUE(entry->ApplyEdgeBatch(BatchFor(6)).ok());
  EXPECT_EQ(entry->version(), 6);
  EXPECT_EQ(SolveSlice(entry), MirrorSolveSliceAt(6));
}

TEST_F(RecoveryTest, WeightedEntryRecoversTooAndKeepsItsFlavor) {
  const std::string dir = FreshDir("weighted");
  {
    GraphCatalog catalog;
    ASSERT_TRUE(catalog.EnablePersistence(PersistAt(dir)).ok());
    ASSERT_TRUE(catalog
                    .AddWeightedGraph(
                        "w", UniformWeightedDigraph(20, 60, 5,
                                                    WeightOptions{}))
                    .ok());
    EdgeBatch batch = {EdgeOp::Insert(1, 2, 7), EdgeOp::Delete(0, 1)};
    ASSERT_TRUE(catalog.Find("w")->ApplyEdgeBatch(batch).ok());
  }
  GraphCatalog recovered;
  ASSERT_TRUE(recovered.EnablePersistence(PersistAt(dir)).ok());
  ASSERT_TRUE(recovered.RecoverAll().ok());
  const CatalogEntry* entry = recovered.Find("w");
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->weighted());
  EXPECT_EQ(entry->version(), 1);
}

TEST_F(RecoveryTest, ManualCheckpointFoldsTheLogAndRecoveryResumes) {
  const std::string dir = FreshDir("checkpoint");
  {
    GraphCatalog catalog;
    ASSERT_TRUE(catalog.EnablePersistence(PersistAt(dir)).ok());
    ASSERT_TRUE(catalog.AddGraph("g", BaseGraph()).ok());
    CatalogEntry* entry = catalog.Find("g");
    for (int64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(entry->ApplyEdgeBatch(BatchFor(i)).ok());
    }
    ASSERT_TRUE(entry->Checkpoint().ok());
    EXPECT_EQ(entry->wal_records(), 0);  // folded into the snapshot
    EXPECT_EQ(entry->checkpoints(), 1);
    for (int64_t i = 4; i <= 5; ++i) {
      ASSERT_TRUE(entry->ApplyEdgeBatch(BatchFor(i)).ok());
    }
    EXPECT_EQ(entry->wal_records(), 2);  // only the tail since the fold
  }
  GraphCatalog recovered;
  ASSERT_TRUE(recovered.EnablePersistence(PersistAt(dir)).ok());
  ASSERT_TRUE(recovered.RecoverAll().ok());
  CatalogEntry* entry = recovered.Find("g");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->version(), 5);
  EXPECT_EQ(SolveSlice(entry), MirrorSolveSliceAt(5));
}

TEST_F(RecoveryTest, FsyncAlwaysMakesEveryAckReadableFromDiskAtAckTime) {
  const std::string dir = FreshDir("ack_durable");
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.EnablePersistence(PersistAt(dir)).ok());
  ASSERT_TRUE(catalog.AddGraph("g", BaseGraph()).ok());
  CatalogEntry* entry = catalog.Find("g");
  for (int64_t i = 1; i <= 4; ++i) {
    const auto applied = entry->ApplyEdgeBatch(BatchFor(i));
    ASSERT_TRUE(applied.ok());
    // The ack ordering argument, observed from outside: the instant
    // ApplyEdgeBatch returns OK, a read-only replay of the on-disk log
    // (this entry still holds it open) already contains the record —
    // append + fsync happened *before* the return that permits the ack.
    const Result<WalReplay> on_disk = ReadWal(dir + "/g.wal");
    ASSERT_TRUE(on_disk.ok());
    ASSERT_EQ(on_disk.value().records.size(), static_cast<size_t>(i));
    EXPECT_EQ(on_disk.value().records.back().version, i);
    EXPECT_EQ(FormatEdgeOps(on_disk.value().records.back().batch),
              FormatEdgeOps(BatchFor(i)));
  }
}

TEST_F(RecoveryTest, VersionGapInTheLogFailsRecoveryLoudly) {
  const std::string dir = FreshDir("gap");
  {
    GraphCatalog catalog;
    ASSERT_TRUE(catalog.EnablePersistence(PersistAt(dir)).ok());
    ASSERT_TRUE(catalog.AddGraph("g", BaseGraph()).ok());
    ASSERT_TRUE(catalog.Find("g")->ApplyEdgeBatch(BatchFor(1)).ok());
  }
  {
    // Forge a record that skips version 2 — a log no honest execution
    // produces. Recovery must refuse rather than replay across the hole.
    WalReplay replay;
    auto wal =
        WriteAheadLog::Open(dir + "/g.wal", WalOptions{}, &replay).value();
    ASSERT_EQ(replay.records.size(), 1u);
    ASSERT_TRUE(wal->Append(3, BatchFor(3)).ok());
  }
  GraphCatalog recovered;
  ASSERT_TRUE(recovered.EnablePersistence(PersistAt(dir)).ok());
  const Status status = recovered.RecoverAll();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

// -------------------------------------------- bounded apply (satellite)

TEST_F(RecoveryTest, UpdateAgainstABusyEntryTimesOutRetryably) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", BaseGraph()).ok());
  CatalogEntry* entry = catalog.Find("g");

  SolveGate gate;
  std::thread solver([&] {
    DdsRequest request;
    request.algorithm = DdsAlgorithm::kCoreExact;
    request.progress = gate.AsProgress();
    (void)entry->Solve(request);
  });
  gate.WaitEntered();  // the solve now owns the entry mutex

  const auto blocked = entry->ApplyEdgeBatch(BatchFor(1), /*timeout_s=*/0.05);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(blocked.status().message().find("busy"), std::string::npos);

  gate.Release();
  solver.join();
  // Nothing was half-applied: the retry succeeds at version 1.
  const auto applied = entry->ApplyEdgeBatch(BatchFor(1), /*timeout_s=*/5);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().version, 1);
}

// --------------------------------------------------- the crash matrices

struct CrashOutcome {
  int exit_code = -1;
  int64_t highest_acked = 0;
};

// Runs the canonical update sequence in a forked child with `point`
// armed to abort after `fire_after` evaluations; every acked version is
// reported through a pipe before the next apply starts.
CrashOutcome RunCrashingChild(const std::string& dir,
                              const std::string& point, int64_t fire_after,
                              int64_t checkpoint_bytes) {
  CrashOutcome outcome;
  int fds[2];
  EXPECT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    alarm(120);  // a hung child must die visibly, not wedge ctest
    Failpoints::Activate(point, Failpoints::Action::kAbort, fire_after);
    GraphCatalog catalog;
    if (!catalog.EnablePersistence(PersistAt(dir, checkpoint_bytes)).ok()) {
      _exit(2);
    }
    if (!catalog.AddGraph("g", BaseGraph()).ok()) _exit(3);
    CatalogEntry* entry = catalog.Find("g");
    for (int64_t i = 1; i <= 6; ++i) {
      const auto applied = entry->ApplyEdgeBatch(BatchFor(i));
      if (!applied.ok()) _exit(4);
      const int64_t acked = applied.value().version;
      if (write(fds[1], &acked, sizeof(acked)) != sizeof(acked)) _exit(5);
    }
    _exit(0);  // the armed point was never reached on this path
  }
  close(fds[1]);
  int64_t version = 0;
  while (read(fds[0], &version, sizeof(version)) ==
         static_cast<ssize_t>(sizeof(version))) {
    outcome.highest_acked = version;
  }
  close(fds[0]);
  int wstatus = 0;
  EXPECT_EQ(waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  outcome.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  return outcome;
}

// Recovers `dir` and asserts the §16 invariant against `outcome`.
void ExpectRecoveredAtLeast(const std::string& dir,
                            const CrashOutcome& outcome,
                            const std::string& label) {
  GraphCatalog recovered;
  ASSERT_TRUE(recovered.EnablePersistence(PersistAt(dir)).ok()) << label;
  std::vector<std::string> names;
  ASSERT_TRUE(recovered.RecoverAll(&names).ok()) << label;
  if (names.empty()) {
    // Death before the entry's initial snapshot landed: nothing was
    // recoverable — and, crucially, nothing was ever acked.
    EXPECT_EQ(outcome.highest_acked, 0) << label;
    return;
  }
  CatalogEntry* entry = recovered.Find("g");
  ASSERT_NE(entry, nullptr) << label;
  // Never lose an ack; running ahead of the last ack is allowed (the
  // crash hit between durability and the ack).
  EXPECT_GE(entry->version(), outcome.highest_acked) << label;
  // Bit-identical to the never-crashed mirror at the recovered version.
  EXPECT_EQ(SolveSlice(entry), MirrorSolveSliceAt(entry->version()))
      << label;
}

// The tentpole acceptance test: kill the process at every failpoint in
// the WAL/apply/snapshot path (at two different occurrence indices), and
// prove recovery lands at or above the highest acked version with
// bit-identical solves. checkpoint_bytes=1 forces a checkpoint after
// every apply so the snapshot sites fire mid-sequence, not just at
// attach time.
TEST_F(RecoveryTest, CrashMatrixEveryFailpointRecoversBitIdentical) {
  int case_index = 0;
  for (const std::string& point : WalFailpointNames()) {
    for (const int64_t fire_after : {int64_t{0}, int64_t{2}}) {
      const std::string label =
          point + "@" + std::to_string(fire_after);
      const std::string dir =
          FreshDir("matrix_" + std::to_string(case_index++));
      const CrashOutcome outcome =
          RunCrashingChild(dir, point, fire_after, /*checkpoint_bytes=*/1);
      ASSERT_TRUE(outcome.exit_code == 0 ||
                  outcome.exit_code == Failpoints::kAbortExitCode)
          << label << " exited " << outcome.exit_code;
      ExpectRecoveredAtLeast(dir, outcome, label);
    }
  }
}

// Same matrix without auto-checkpoints: the WAL carries the whole
// history, so the apply/append sites are exercised against a long log.
TEST_F(RecoveryTest, CrashMatrixWithoutCheckpointsRecoversBitIdentical) {
  int case_index = 0;
  for (const std::string& point : WalFailpointNames()) {
    const std::string label = point + "@1/nocheckpoint";
    const std::string dir =
        FreshDir("matrix_nock_" + std::to_string(case_index++));
    const CrashOutcome outcome =
        RunCrashingChild(dir, point, /*fire_after=*/1,
                         /*checkpoint_bytes=*/0);
    ASSERT_TRUE(outcome.exit_code == 0 ||
                outcome.exit_code == Failpoints::kAbortExitCode)
        << label << " exited " << outcome.exit_code;
    ExpectRecoveredAtLeast(dir, outcome, label);
  }
}

// The full-stack variant: a forked child runs a real DdsServer over TCP
// with durability on and dies (kill -9 equivalent) mid-update under a
// live client. The parent — which only knows what was acked over the
// wire — recovers the directory and must find every acked update.
TEST_F(RecoveryTest, KilledServerProcessRecoversEveryAckedUpdate) {
  const std::string dir = FreshDir("server_kill");
  int port_pipe[2];
  ASSERT_EQ(pipe(port_pipe), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(port_pipe[0]);
    alarm(120);
    // Die on the 4th WAL append: acks 1..3 reach the wire, the 4th
    // update's record may or may not be durable — never its ack.
    Failpoints::Activate("wal:after_append", Failpoints::Action::kAbort,
                         /*fire_after=*/3);
    GraphCatalog catalog;
    if (!catalog.EnablePersistence(PersistAt(dir)).ok()) _exit(2);
    if (!catalog.AddGraph("g", BaseGraph()).ok()) _exit(3);
    DdsServer server(&catalog, ServerOptions{});
    const Result<int> port = server.Start();
    if (!port.ok()) _exit(4);
    const int value = port.value();
    if (write(port_pipe[1], &value, sizeof(value)) != sizeof(value)) {
      _exit(5);
    }
    for (;;) pause();  // server threads do the work; the abort ends us
  }
  close(port_pipe[1]);
  int port = 0;
  ASSERT_EQ(read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  close(port_pipe[0]);

  ServeClientOptions copts;
  copts.read_timeout_s = 30;
  ServeClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  int64_t highest_acked = 0;
  for (int64_t i = 1; i <= 10; ++i) {
    const std::string update =
        "{\"op\": \"update\", \"graph\": \"g\", \"edges\": \"" +
        FormatEdgeOps(BatchFor(i)) + "\"}";
    const Result<std::string> response = client.Call(update);
    if (!response.ok()) break;  // the server died under us
    if (FindJsonString(response.value(), "status").value_or("") != "ok") {
      break;
    }
    highest_acked = static_cast<int64_t>(
        FindJsonNumber(response.value(), "version").value_or(0));
  }
  EXPECT_EQ(highest_acked, 3);

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), Failpoints::kAbortExitCode);

  CrashOutcome outcome;
  outcome.exit_code = Failpoints::kAbortExitCode;
  outcome.highest_acked = highest_acked;
  ExpectRecoveredAtLeast(dir, outcome, "server_kill");
}

}  // namespace
}  // namespace ddsgraph
