#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dds/core_exact.h"
#include "dds/density.h"
#include "flow/dds_network.h"
#include "flow/dinic.h"
#include "flow/flow_network.h"
#include "flow/min_cut.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

// --------------------------------------------------------------------
// Flow-network invariants shared by the warm-start tests.
// --------------------------------------------------------------------

// Every residual must be non-negative (up to rounding).
void ExpectResidualsNonNegative(const FlowNetwork& net) {
  for (uint32_t arc = 0; arc < net.NumArcs(); ++arc) {
    EXPECT_GE(net.Residual(arc), -kFlowEps) << "arc " << arc;
  }
}

// Net outflow of every non-terminal node must be zero: summing
// InitialCap - Residual over a node's whole adjacency counts forward flow
// positively and, via the reverse arcs, incoming flow negatively.
void ExpectFlowConserved(const FlowNetwork& net, uint32_t source,
                         uint32_t sink) {
  for (uint32_t v = 0; v < net.NumNodes(); ++v) {
    if (v == source || v == sink) continue;
    FlowCap net_outflow = 0;
    for (uint32_t e = net.Head(v); e != FlowNetwork::kNil; e = net.Next(e)) {
      net_outflow += net.InitialCap(e) - net.Residual(e);
    }
    EXPECT_NEAR(net_outflow, 0.0, 1e-6) << "node " << v;
  }
}

FlowCap TotalSourceOutflow(const FlowNetwork& net, uint32_t source) {
  FlowCap total = 0;
  for (uint32_t e = net.Head(source); e != FlowNetwork::kNil;
       e = net.Next(e)) {
    total += net.InitialCap(e) - net.Residual(e);
  }
  return total;
}

template <typename G>
std::vector<VertexId> AllVertices(const G& g) {
  std::vector<VertexId> all(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) all[v] = v;
  return all;
}

// --------------------------------------------------------------------
// SetArcCapacity / RouteFlow / Resolve unit tests.
// --------------------------------------------------------------------

TEST(SetArcCapacityTest, GrowingCapacityPreservesFlow) {
  FlowNetwork net(4);  // s=0 -> 1 -> 2 -> t=3, bottleneck 1 in the middle
  const uint32_t first = net.AddEdge(0, 1, 5);
  const uint32_t middle = net.AddEdge(1, 2, 1);
  net.AddEdge(2, 3, 5);
  Dinic dinic(&net);
  EXPECT_NEAR(dinic.Solve(0, 3), 1.0, 1e-12);

  // Raising the bottleneck must keep the routed unit and leave exactly the
  // new headroom as residual.
  EXPECT_EQ(net.SetArcCapacity(middle, 3.0), 0.0);
  EXPECT_NEAR(net.FlowOn(middle), 1.0, 1e-12);
  EXPECT_NEAR(net.Residual(middle), 2.0, 1e-12);
  EXPECT_NEAR(net.InitialCap(middle), 3.0, 1e-12);
  ExpectResidualsNonNegative(net);
  ExpectFlowConserved(net, 0, 3);

  // Warm start: Resolve returns only the incremental flow.
  EXPECT_NEAR(dinic.Resolve(0, 3), 2.0, 1e-12);
  EXPECT_NEAR(TotalSourceOutflow(net, 0), 3.0, 1e-12);
  EXPECT_TRUE(VerifyMaxFlowMinCut(net, 0, 3, 3.0, 1e-9));
  EXPECT_EQ(net.SetArcCapacity(first, 5.0), 0.0);  // no-op update
  ExpectFlowConserved(net, 0, 3);
}

TEST(SetArcCapacityTest, ShrinkingBelowFlowDrainsAndRouteFlowRebalances) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 5);
  const uint32_t middle = net.AddEdge(1, 2, 4);
  net.AddEdge(2, 3, 5);
  Dinic dinic(&net);
  EXPECT_NEAR(dinic.Solve(0, 3), 4.0, 1e-12);

  // Cutting the middle capacity below its flow must saturate it at the
  // new value and report the excess.
  const FlowCap excess = net.SetArcCapacity(middle, 1.5);
  EXPECT_NEAR(excess, 2.5, 1e-12);
  EXPECT_NEAR(net.FlowOn(middle), 1.5, 1e-12);
  EXPECT_NEAR(net.Residual(middle), 0.0, 1e-12);

  // Node 1 is now over-supplied by the excess and node 2 under-supplied
  // (for a mid-network arc both endpoints need rebalancing; the DDS
  // engine's sink arcs only ever need the tail-side route).
  EXPECT_NEAR(RouteFlow(&net, 1, 0, excess), excess, 1e-12);
  EXPECT_NEAR(RouteFlow(&net, 3, 2, excess), excess, 1e-12);
  ExpectResidualsNonNegative(net);
  ExpectFlowConserved(net, 0, 3);
  EXPECT_NEAR(TotalSourceOutflow(net, 0), 1.5, 1e-12);

  // The reduced network's max flow is the new bottleneck; the drained
  // flow is already maximum, so Resolve finds nothing to add.
  EXPECT_NEAR(dinic.Resolve(0, 3), 0.0, 1e-12);
  EXPECT_TRUE(VerifyMaxFlowMinCut(net, 0, 3, 1.5, 1e-9));
}

TEST(SetArcCapacityTest, AddArcCapacityDeltasAndClampsAtZero) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 4);
  const uint32_t tail_arc = net.AddEdge(1, 2, 2);
  Dinic dinic(&net);
  EXPECT_NEAR(dinic.Solve(0, 2), 2.0, 1e-12);

  EXPECT_EQ(net.AddArcCapacity(tail_arc, 1.5), 0.0);
  EXPECT_NEAR(net.InitialCap(tail_arc), 3.5, 1e-12);
  EXPECT_NEAR(net.Residual(tail_arc), 1.5, 1e-12);
  ExpectFlowConserved(net, 0, 2);

  // A negative delta below the carried flow drains like SetArcCapacity...
  EXPECT_NEAR(net.AddArcCapacity(tail_arc, -2.5), 1.0, 1e-12);
  EXPECT_NEAR(net.FlowOn(tail_arc), 1.0, 1e-12);
  EXPECT_NEAR(RouteFlow(&net, 1, 0, 1.0), 1.0, 1e-12);
  ExpectFlowConserved(net, 0, 2);

  // ...and a delta past zero clamps the capacity at 0.
  EXPECT_NEAR(net.AddArcCapacity(tail_arc, -99.0), 1.0, 1e-12);
  EXPECT_NEAR(net.InitialCap(tail_arc), 0.0, 1e-12);
  EXPECT_NEAR(net.FlowOn(tail_arc), 0.0, 1e-12);
}

TEST(RouteFlowTest, StopsAtAvailableResidual) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 2);
  net.AddEdge(1, 2, 2);
  Dinic dinic(&net);
  dinic.Solve(0, 2);
  // Only 2 units of flow arrived at node 1's reverse arcs; asking for more
  // routes what exists and reports the shortfall via the return value.
  EXPECT_NEAR(RouteFlow(&net, 1, 0, 5.0), 2.0, 1e-12);
}

// --------------------------------------------------------------------
// Reparameterize: equivalence with a fresh build at the new guess.
// --------------------------------------------------------------------

class ReparameterizeTest : public ::testing::TestWithParam<int> {};

TEST_P(ReparameterizeTest, MatchesFreshBuildAcrossGuessSchedule) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const Digraph g =
      UniformDigraph(30, 120 + static_cast<int64_t>(rng.NextBounded(60)),
                     17 + static_cast<uint64_t>(GetParam()));
  const double sqrt_a = std::sqrt(0.5 + 0.1 * GetParam());
  const double upper = std::sqrt(static_cast<double>(g.NumEdges()));

  // A rise/fall/rise schedule: warm starts must survive both directions.
  const double guesses[] = {0.4 * upper, 0.7 * upper, 0.2 * upper,
                            0.9 * upper, 0.05 * upper, 0.5 * upper};

  DdsNetwork incremental = BuildDdsNetwork(g, AllVertices(g), AllVertices(g),
                                           sqrt_a, guesses[0]);
  Dinic dinic(&incremental.net);
  dinic.Solve(incremental.source, incremental.sink);
  for (double guess : guesses) {
    incremental.Reparameterize(guess);
    dinic.Resolve(incremental.source, incremental.sink);
    ExpectResidualsNonNegative(incremental.net);
    ExpectFlowConserved(incremental.net, incremental.source,
                        incremental.sink);

    DdsNetwork fresh = BuildDdsNetwork(g, AllVertices(g), AllVertices(g),
                                       sqrt_a, guess);
    Dinic fresh_dinic(&fresh.net);
    const FlowCap fresh_flow = fresh_dinic.Solve(fresh.source, fresh.sink);

    // Same max-flow value and the same (unique minimal) min cut, hence
    // identical extracted witness pairs.
    EXPECT_NEAR(TotalSourceOutflow(incremental.net, incremental.source),
                fresh_flow, 1e-6 * std::max<FlowCap>(1.0, fresh_flow));
    EXPECT_TRUE(VerifyMaxFlowMinCut(incremental.net, incremental.source,
                                    incremental.sink, fresh_flow, 1e-6));
    const ExtractedPair warm_pair = ExtractPairFromCut(
        incremental,
        SourceSideOfMinCut(incremental.net, incremental.source));
    const ExtractedPair fresh_pair = ExtractPairFromCut(
        fresh, SourceSideOfMinCut(fresh.net, fresh.source));
    EXPECT_EQ(warm_pair.s, fresh_pair.s) << "guess " << guess;
    EXPECT_EQ(warm_pair.t, fresh_pair.t) << "guess " << guess;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReparameterizeTest, ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Randomized equivalence: the incremental engine must return bit-identical
// results versus fresh-build-per-guess mode across generator families.
// --------------------------------------------------------------------

template <typename G>
void ExpectProbesIdentical(const G& g, const Fraction& ratio,
                           bool refine_cores) {
  const double upper = std::sqrt(static_cast<double>(g.TotalWeight()) *
                                 static_cast<double>(g.MaxEdgeWeight()));
  const double delta = ExactSearchDelta(g);
  ProbeWorkspace incremental_ws;
  const RatioProbeResult incremental = ProbeRatio(
      g, AllVertices(g), AllVertices(g), ratio, 0.0, upper, delta,
      refine_cores, /*record_sizes=*/true, /*stop_below=*/0.0,
      &incremental_ws, /*incremental=*/true);
  ProbeWorkspace fresh_ws;
  const RatioProbeResult fresh = ProbeRatio(
      g, AllVertices(g), AllVertices(g), ratio, 0.0, upper, delta,
      refine_cores, /*record_sizes=*/true, /*stop_below=*/0.0, &fresh_ws,
      /*incremental=*/false);

  // Bit-identical trajectories: same guesses, same witnesses, same pairs.
  EXPECT_EQ(incremental.h_upper, fresh.h_upper);
  EXPECT_EQ(incremental.last_feasible, fresh.last_feasible);
  EXPECT_EQ(incremental.best_density, fresh.best_density);
  EXPECT_EQ(incremental.best_pair.s, fresh.best_pair.s);
  EXPECT_EQ(incremental.best_pair.t, fresh.best_pair.t);
  EXPECT_EQ(incremental.iterations, fresh.iterations);
  EXPECT_EQ(incremental.network_sizes, fresh.network_sizes);
  // The whole point: the incremental run reuses what the fresh run
  // rebuilds, solving a min cut at every guess either way.
  EXPECT_EQ(fresh.networks_reused, 0);
  EXPECT_EQ(incremental.networks_built + incremental.networks_reused,
            fresh.networks_built);
  if (fresh.networks_built > 1) {
    EXPECT_LT(incremental.networks_built, fresh.networks_built);
  }
}

TEST(IncrementalProbeEquivalenceTest, UniformFamily) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Digraph g = UniformDigraph(40, 300, seed);
    for (const Fraction ratio :
         {Fraction{1, 2}, Fraction{1, 1}, Fraction{2, 1}}) {
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/false);
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/true);
    }
  }
}

TEST(IncrementalProbeEquivalenceTest, RmatFamily) {
  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    const Digraph g = RmatDigraph(6, 400, seed);
    for (const Fraction ratio : {Fraction{1, 1}, Fraction{3, 2}}) {
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/false);
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/true);
    }
  }
}

TEST(IncrementalProbeEquivalenceTest, BicliqueFamily) {
  for (uint64_t seed : {8ull, 9ull}) {
    const Digraph g = BicliqueWithNoise(40, 4, 6, 80, seed);
    for (const Fraction ratio : {Fraction{2, 3}, Fraction{1, 1}}) {
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/false);
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/true);
    }
  }
}

TEST(IncrementalProbeEquivalenceTest, PlantedFamily) {
  for (uint64_t seed : {10ull, 11ull}) {
    const PlantedDigraph planted =
        PlantedDenseBlock(60, 200, 5, 8, 0.9, seed);
    for (const Fraction ratio : {Fraction{5, 8}, Fraction{1, 1}}) {
      ExpectProbesIdentical(planted.graph, ratio, /*refine_cores=*/false);
      ExpectProbesIdentical(planted.graph, ratio, /*refine_cores=*/true);
    }
  }
}

// End-to-end: the full exact solver agrees bit-exactly between modes, and
// the incremental mode actually reuses networks.
TEST(IncrementalProbeEquivalenceTest, SolverEndToEnd) {
  for (uint64_t seed : {21ull, 22ull}) {
    const Digraph g = RmatDigraph(6, 350, seed);
    ExactOptions incremental_options;
    ExactOptions fresh_options;
    fresh_options.incremental_probe = false;
    const DdsSolution incremental = SolveExactDds(g, incremental_options);
    const DdsSolution fresh = SolveExactDds(g, fresh_options);
    EXPECT_EQ(incremental.density, fresh.density);
    EXPECT_EQ(incremental.pair.s, fresh.pair.s);
    EXPECT_EQ(incremental.pair.t, fresh.pair.t);
    EXPECT_EQ(incremental.stats.binary_search_iters,
              fresh.stats.binary_search_iters);
    EXPECT_EQ(fresh.stats.flow_networks_reused, 0);
    EXPECT_EQ(incremental.stats.flow_networks_built +
                  incremental.stats.flow_networks_reused,
              fresh.stats.flow_networks_built);
    EXPECT_GT(incremental.stats.flow_networks_reused, 0);
  }
}

// --------------------------------------------------------------------
// Weighted instantiation: the probe template must keep the same
// incremental-vs-fresh bit-identity when arc capacities are weights.
// --------------------------------------------------------------------

TEST(IncrementalProbeEquivalenceTest, WeightedUniformFamily) {
  WeightOptions heavy;
  heavy.max_weight = 9;
  for (uint64_t seed : {31ull, 32ull, 33ull}) {
    const WeightedDigraph g = UniformWeightedDigraph(40, 300, seed, heavy);
    for (const Fraction ratio :
         {Fraction{1, 2}, Fraction{1, 1}, Fraction{2, 1}}) {
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/false);
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/true);
    }
  }
}

TEST(IncrementalProbeEquivalenceTest, WeightedLiftedRmatFamily) {
  WeightOptions tail;
  tail.dist = WeightOptions::Dist::kGeometric;
  tail.max_weight = 16;
  for (uint64_t seed : {34ull, 35ull}) {
    const WeightedDigraph g =
        AttachRandomWeights(RmatDigraph(6, 400, seed), seed + 1, tail);
    for (const Fraction ratio : {Fraction{1, 1}, Fraction{3, 2}}) {
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/false);
      ExpectProbesIdentical(g, ratio, /*refine_cores=*/true);
    }
  }
}

TEST(IncrementalProbeEquivalenceTest, WeightedSolverEndToEnd) {
  WeightOptions heavy;
  heavy.max_weight = 7;
  for (uint64_t seed : {41ull, 42ull}) {
    const WeightedDigraph g = UniformWeightedDigraph(32, 200, seed, heavy);
    ExactOptions incremental_options;
    ExactOptions fresh_options;
    fresh_options.incremental_probe = false;
    const DdsSolution incremental = SolveExactDds(g, incremental_options);
    const DdsSolution fresh = SolveExactDds(g, fresh_options);
    EXPECT_EQ(incremental.density, fresh.density);
    EXPECT_EQ(incremental.pair.s, fresh.pair.s);
    EXPECT_EQ(incremental.pair.t, fresh.pair.t);
    EXPECT_EQ(incremental.stats.binary_search_iters,
              fresh.stats.binary_search_iters);
    EXPECT_EQ(fresh.stats.flow_networks_reused, 0);
    EXPECT_EQ(incremental.stats.flow_networks_built +
                  incremental.stats.flow_networks_reused,
              fresh.stats.flow_networks_built);
    EXPECT_GT(incremental.stats.flow_networks_reused, 0);
  }
}

}  // namespace
}  // namespace ddsgraph
