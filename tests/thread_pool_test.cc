#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&](int64_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, NonPositiveAndTinyCounts) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int64_t i, int worker) {
    EXPECT_EQ(i, 0);
    EXPECT_EQ(worker, 0);  // n == 1 runs inline on the caller
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](int64_t i, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, pool.num_workers());
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, RunOnAllWorkersRunsBodyOncePerWorker) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> per_worker(3);
  pool.RunOnAllWorkers([&](int worker) {
    per_worker[static_cast<size_t>(worker)].fetch_add(1);
  });
  for (int w = 0; w < 3; ++w) EXPECT_EQ(per_worker[w].load(), 1) << w;
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, [&](int64_t i, int) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPoolTest, OrderedReduceIsScheduleIndependent) {
  // The fold must run in index order no matter which worker computed
  // which element: build a string of indices and check it is sorted.
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    const std::vector<int64_t> result =
        pool.ParallelOrderedReduce<std::vector<int64_t>>(
            64, {},
            [](int64_t i, int) {
              return std::vector<int64_t>{i};
            },
            [](std::vector<int64_t> acc, std::vector<int64_t> next) {
              acc.insert(acc.end(), next.begin(), next.end());
              return acc;
            });
    std::vector<int64_t> expected(64);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(result, expected) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ddsgraph
