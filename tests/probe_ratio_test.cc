#include <cmath>

#include <gtest/gtest.h>

#include "dds/core_exact.h"
#include "dds/naive_exact.h"
#include "graph/generators.h"

namespace ddsgraph {
namespace {

std::vector<VertexId> AllVertices(const Digraph& g) {
  std::vector<VertexId> all(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) all[v] = v;
  return all;
}

TEST(ProbeRatioTest, FindsOptimumAtItsOwnRatio) {
  // 3x5 biclique: optimum at ratio 3/5 with density sqrt(15).
  const Digraph g = BicliqueWithNoise(8, 3, 5, 0, 1);
  const double upper = std::sqrt(static_cast<double>(g.NumEdges()));
  const RatioProbeResult probe =
      ProbeRatio(g, AllVertices(g), AllVertices(g), Fraction{3, 5}, 0.0,
                 upper, ExactSearchDelta(g), /*refine_cores=*/false,
                 /*record_sizes=*/false);
  EXPECT_NEAR(probe.best_density, std::sqrt(15.0), 1e-6);
  // h_upper must bracket the found value.
  EXPECT_GE(probe.h_upper + 1e-9, probe.best_density - 1e-6);
}

TEST(ProbeRatioTest, RefinedCoresGiveSameAnswer) {
  const Digraph g = RmatDigraph(6, 300, 9);
  const double upper = std::sqrt(static_cast<double>(g.NumEdges()));
  for (const Fraction ratio : {Fraction{1, 2}, Fraction{1, 1}, Fraction{3, 2}}) {
    const RatioProbeResult plain =
        ProbeRatio(g, AllVertices(g), AllVertices(g), ratio, 0.0, upper,
                   ExactSearchDelta(g), false, false);
    const RatioProbeResult refined =
        ProbeRatio(g, AllVertices(g), AllVertices(g), ratio, 0.0, upper,
                   ExactSearchDelta(g), true, false);
    EXPECT_NEAR(plain.h_upper, refined.h_upper, 1e-6)
        << "ratio " << ratio.ToString();
    EXPECT_NEAR(plain.best_density, refined.best_density, 1e-6)
        << "ratio " << ratio.ToString();
  }
}

TEST(ProbeRatioTest, RefinedCoresShrinkNetworks) {
  const Digraph g = RmatDigraph(8, 4000, 21);
  const double upper = std::sqrt(static_cast<double>(g.NumEdges()));
  const RatioProbeResult plain =
      ProbeRatio(g, AllVertices(g), AllVertices(g), Fraction{1, 1}, 0.0,
                 upper, ExactSearchDelta(g), false, true);
  const RatioProbeResult refined =
      ProbeRatio(g, AllVertices(g), AllVertices(g), Fraction{1, 1}, 0.0,
                 upper, ExactSearchDelta(g), true, true);
  ASSERT_FALSE(plain.network_sizes.empty());
  ASSERT_FALSE(refined.network_sizes.empty());
  // The unrefined probe rebuilds full-size networks every iteration; the
  // refined one must end far smaller once the lower bound rises.
  EXPECT_LT(refined.network_sizes.back(), plain.network_sizes.back() / 2);
  EXPECT_LE(refined.max_network_nodes, plain.max_network_nodes);
}

TEST(ProbeRatioTest, WitnessedLowerBoundAcceleratesConvergence) {
  // Feasible guesses jump `l` to the witness's linearized value instead of
  // the guess itself, so the search converges in a handful of iterations
  // rather than the full log2(range/delta).
  const Digraph g = UniformDigraph(40, 400, 3);
  const double upper = std::sqrt(static_cast<double>(g.NumEdges()));
  const RatioProbeResult from_zero =
      ProbeRatio(g, AllVertices(g), AllVertices(g), Fraction{1, 1}, 0.0,
                 upper, 1e-6, false, false);
  EXPECT_GT(from_zero.last_feasible, 0.0);
  EXPECT_GE(from_zero.h_upper + 1e-9, from_zero.last_feasible);
  // log2(20 / 1e-6) would be ~24; witnesses should cut that down hard.
  EXPECT_LE(from_zero.iterations, 15);

  // A lower_start above h(a) just descends; its h_upper stays a valid
  // upper bound for everything the full search witnessed.
  const RatioProbeResult warm =
      ProbeRatio(g, AllVertices(g), AllVertices(g), Fraction{1, 1},
                 from_zero.best_density * 0.999, upper, 1e-6, false, false);
  EXPECT_GE(warm.h_upper + 1e-6, from_zero.last_feasible);
}

TEST(ProbeRatioTest, StopBelowTruncatesDescent) {
  const Digraph g = UniformDigraph(40, 400, 3);
  const double upper = std::sqrt(static_cast<double>(g.NumEdges()));
  // A stop threshold above h(a) must cut the search short while keeping
  // h_upper a certified bound (>= h(a), here witnessed by last_feasible of
  // an untruncated probe).
  const RatioProbeResult full =
      ProbeRatio(g, AllVertices(g), AllVertices(g), Fraction{1, 1}, 0.0,
                 upper, 1e-6, false, false);
  const double stop = full.h_upper + 1.0;
  const RatioProbeResult truncated =
      ProbeRatio(g, AllVertices(g), AllVertices(g), Fraction{1, 1}, 0.0,
                 upper, 1e-6, false, false, stop);
  EXPECT_LT(truncated.iterations, full.iterations + 1);
  EXPECT_GE(truncated.h_upper + 1e-9, full.last_feasible);
}

TEST(ProbeRatioTest, UpperBelowLowerShortCircuits) {
  const Digraph g = UniformDigraph(10, 30, 1);
  const RatioProbeResult probe =
      ProbeRatio(g, AllVertices(g), AllVertices(g), Fraction{1, 1}, 5.0,
                 4.0, 1e-6, false, false);
  EXPECT_EQ(probe.iterations, 0);
  EXPECT_EQ(probe.networks_built, 0);
  EXPECT_EQ(probe.h_upper, 4.0);
}

TEST(ProbeRatioTest, HUpperIsSoundAcrossRatios) {
  // For every probed ratio c, every pair obeys rho <= h_upper(c) *
  // phi(pair_ratio / c). Cross-check against the exhaustive optimum at its
  // own ratio.
  const Digraph g = UniformDigraph(8, 25, 12);
  const DdsSolution naive = NaiveExact(g);
  const double a_star = static_cast<double>(naive.pair.s.size()) /
                        static_cast<double>(naive.pair.t.size());
  const double upper = std::sqrt(static_cast<double>(g.NumEdges()));
  for (const Fraction ratio :
       {Fraction{1, 3}, Fraction{1, 1}, Fraction{2, 1}, Fraction{3, 1}}) {
    const RatioProbeResult probe =
        ProbeRatio(g, AllVertices(g), AllVertices(g), ratio, 0.0, upper,
                   ExactSearchDelta(g), false, false);
    const double phi = RatioMismatchPhi(a_star / ratio.ToDouble());
    EXPECT_LE(naive.density, probe.h_upper * phi + 1e-6)
        << "ratio " << ratio.ToString();
  }
}

}  // namespace
}  // namespace ddsgraph
