// End-to-end integration tests across graph families: every algorithm is
// run through the public facade on every generator family, and the
// outputs are cross-validated (exactness agreement, approximation
// brackets, self-consistency of reported quantities). This is the test
// analogue of running the whole benchmark suite at miniature scale.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "ddsgraph.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

Digraph MakeFamilyGraph(const std::string& family, uint64_t seed) {
  if (family == "uniform") return UniformDigraph(40, 200, seed);
  if (family == "gnp") return GnpDigraph(35, 0.12, seed);
  if (family == "rmat") return RmatDigraph(6, 300, seed);
  if (family == "biclique") return BicliqueWithNoise(40, 4, 6, 80, seed);
  if (family == "planted") {
    return PlantedDenseBlock(50, 120, 5, 7, 1.0, seed).graph;
  }
  if (family == "sparse-path") {
    std::vector<Edge> edges;
    for (VertexId v = 0; v + 1 < 40; ++v) edges.push_back({v, v + 1});
    return Digraph::FromEdges(40, edges);
  }
  ADD_FAILURE() << "unknown family " << family;
  return Digraph();
}

class FamilyIntegrationTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(FamilyIntegrationTest, AllSolversAreConsistent) {
  const auto& [family, seed] = GetParam();
  const Digraph g = MakeFamilyGraph(family, static_cast<uint64_t>(seed));
  ASSERT_GT(g.NumEdges(), 0);

  const DdsSolution exact = RunDdsAlgorithm(g, DdsAlgorithm::kCoreExact);
  const DdsSolution dc = RunDdsAlgorithm(g, DdsAlgorithm::kDcExact);
  const DdsSolution core_approx =
      RunDdsAlgorithm(g, DdsAlgorithm::kCoreApprox);
  const DdsSolution peel = RunDdsAlgorithm(g, DdsAlgorithm::kPeelApprox);

  // Exact solvers agree.
  EXPECT_NEAR(exact.density, dc.density, 1e-6);
  // Every solution reports the true density of its own pair.
  for (const DdsSolution* sol : {&exact, &dc, &core_approx, &peel}) {
    EXPECT_NEAR(sol->density, DirectedDensity(g, sol->pair), 1e-9);
    EXPECT_EQ(sol->pair_edges, CountPairEdges(g, sol->pair.s, sol->pair.t));
  }
  // Approximations are bracketed: rho/2-ish below, their certified upper
  // bound above the optimum.
  EXPECT_GE(core_approx.density * 2.0 + 1e-9, exact.density);
  EXPECT_LE(exact.density, core_approx.upper_bound + 1e-9);
  EXPECT_LE(exact.density, peel.upper_bound + 1e-9);
  // Exact dominates approximations.
  EXPECT_GE(exact.density + 1e-9, core_approx.density);
  EXPECT_GE(exact.density + 1e-9, peel.density);
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyIntegrationTest,
    ::testing::Combine(::testing::Values("uniform", "gnp", "rmat",
                                         "biclique", "planted",
                                         "sparse-path"),
                       ::testing::Range(1, 4)));

TEST(IntegrationTest, WeightedAndUnweightedPipelinesAgreeOnUnitWeights) {
  const Digraph g = RmatDigraph(5, 150, 3);
  const WeightedDigraph wg = WeightedDigraph::FromDigraph(g);
  EXPECT_NEAR(CoreExact(g).density, WeightedCoreExact(wg).density, 1e-6);
  EXPECT_NEAR(CoreApprox(g).density, WeightedCoreApprox(wg).density, 1e-9);
}

TEST(IntegrationTest, SnapRoundTripPreservesSolverOutput) {
  const Digraph g = UniformDigraph(50, 260, 9);
  const std::string path = testing::TempDir() + "/integration_graph.txt";
  ASSERT_TRUE(SaveSnapEdgeList(g, path).ok());
  const auto loaded = LoadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(CoreExact(g).density, CoreExact(loaded.value().graph).density,
              1e-9);
}

TEST(IntegrationTest, SubgraphOfSolutionHasSameDensity) {
  // Inducing the pair-restricted subgraph of the optimum and re-solving
  // returns at least the same density (the optimum is self-contained).
  const Digraph g = RmatDigraph(6, 350, 8);
  const DdsSolution sol = CoreExact(g);
  std::vector<bool> keep_s(g.NumVertices(), false);
  std::vector<bool> keep_t(g.NumVertices(), false);
  for (VertexId u : sol.pair.s) keep_s[u] = true;
  for (VertexId v : sol.pair.t) keep_t[v] = true;
  const InducedSubgraph sub = InducePair(g, keep_s, keep_t);
  const DdsSolution sub_sol = CoreExact(sub.graph);
  EXPECT_NEAR(sub_sol.density, sol.density, 1e-6);
}

}  // namespace
}  // namespace ddsgraph
