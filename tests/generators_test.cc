#include "graph/generators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "dds/density.h"

namespace ddsgraph {
namespace {

TEST(UniformDigraphTest, ExactEdgeCount) {
  for (int64_t m : {0ll, 1ll, 50ll, 500ll}) {
    const Digraph g = UniformDigraph(50, m, 7);
    EXPECT_EQ(g.NumEdges(), m);
    EXPECT_EQ(g.NumVertices(), 50u);
  }
}

TEST(UniformDigraphTest, DenseRegimeWorks) {
  // More than half of all possible edges triggers the dense sampler.
  const uint32_t n = 20;
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  const Digraph g = UniformDigraph(n, max_edges - 5, 3);
  EXPECT_EQ(g.NumEdges(), max_edges - 5);
}

TEST(UniformDigraphTest, CompleteDigraph) {
  const uint32_t n = 9;
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  const Digraph g = UniformDigraph(n, max_edges, 3);
  EXPECT_EQ(g.NumEdges(), max_edges);
  for (VertexId u = 0; u < n; ++u) {
    EXPECT_EQ(g.OutDegree(u), n - 1);
  }
}

TEST(UniformDigraphTest, DeterministicBySeed) {
  const Digraph a = UniformDigraph(100, 500, 11);
  const Digraph b = UniformDigraph(100, 500, 11);
  const Digraph c = UniformDigraph(100, 500, 12);
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
  EXPECT_NE(a.EdgeList(), c.EdgeList());
}

TEST(RmatDigraphTest, RespectsScaleAndIsSimple) {
  const Digraph g = RmatDigraph(8, 2000, 5);
  EXPECT_EQ(g.NumVertices(), 256u);
  EXPECT_LE(g.NumEdges(), 2000);   // dedup may shrink
  EXPECT_GT(g.NumEdges(), 1000);   // but not pathologically
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v));
  }
}

TEST(RmatDigraphTest, DeterministicBySeed) {
  const Digraph a = RmatDigraph(7, 1000, 9);
  const Digraph b = RmatDigraph(7, 1000, 9);
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
}

TEST(RmatDigraphDeathTest, ParamsMustSumToOne) {
  RmatParams params;
  params.a = 0.9;
  params.b = 0.9;
  EXPECT_DEATH(RmatDigraph(4, 10, 1, params), "sum to 1");
}

TEST(PlantedDenseBlockTest, BlockIsPresentAndDisjoint) {
  const PlantedDigraph planted = PlantedDenseBlock(200, 400, 10, 15, 1.0, 21);
  EXPECT_EQ(planted.planted_s.size(), 10u);
  EXPECT_EQ(planted.planted_t.size(), 15u);
  // Disjoint sides.
  for (VertexId u : planted.planted_s) {
    EXPECT_EQ(std::count(planted.planted_t.begin(), planted.planted_t.end(),
                         u),
              0);
  }
  // With block_density = 1 every S->T edge exists.
  EXPECT_EQ(CountPairEdges(planted.graph, planted.planted_s,
                           planted.planted_t),
            10 * 15);
}

TEST(PlantedDenseBlockTest, BlockIsTheDensestRegion) {
  const PlantedDigraph planted =
      PlantedDenseBlock(300, 600, 12, 12, 1.0, 33);
  const double planted_density = DirectedDensity(
      planted.graph, planted.planted_s, planted.planted_t);
  EXPECT_NEAR(planted_density, 12.0, 1e-9);  // 144 / sqrt(144)
  // Background noise alone cannot reach that density: 600 edges spread over
  // 300 vertices put any (S,T) far below rho = 12 unless it contains the
  // planted block.
  EXPECT_LT(static_cast<double>(planted.graph.NumEdges() - 144) / 300.0,
            planted_density / 2);
}

TEST(BicliqueWithNoiseTest, CoreEdgesPresent) {
  const Digraph g = BicliqueWithNoise(50, 4, 6, 100, 13);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 4; v < 10; ++v) {
      EXPECT_TRUE(g.HasEdge(u, v));
    }
  }
}

TEST(GnpDigraphTest, EdgeProbabilityRoughlyRespected) {
  const Digraph g = GnpDigraph(100, 0.05, 17);
  const double expected = 0.05 * 100 * 99;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected, expected * 0.25);
}

TEST(GnpDigraphTest, ExtremeProbabilities) {
  EXPECT_EQ(GnpDigraph(20, 0.0, 1).NumEdges(), 0);
  EXPECT_EQ(GnpDigraph(10, 1.0, 1).NumEdges(), 90);
}

TEST(UniformWeightedDigraphTest, DeterministicAndWithinWeightBounds) {
  WeightOptions options;
  options.min_weight = 2;
  options.max_weight = 6;
  const WeightedDigraph a = UniformWeightedDigraph(40, 200, 5, options);
  const WeightedDigraph b = UniformWeightedDigraph(40, 200, 5, options);
  EXPECT_EQ(a.EdgeList(), b.EdgeList());  // fully seeded
  EXPECT_GT(a.NumEdges(), 0);
  for (const WeightedEdge& e : a.EdgeList()) {
    EXPECT_GE(e.weight, options.min_weight);
    // Parallel draws merge by summing, so a multi-drawn arc may exceed
    // max_weight; a single draw never does. Just check positivity plus a
    // generous merged cap.
    EXPECT_LE(e.weight, options.max_weight * 200);
  }
  EXPECT_NE(UniformWeightedDigraph(40, 200, 6, options).EdgeList(),
            a.EdgeList());
}

TEST(UniformWeightedDigraphTest, GeometricTailStaysClamped) {
  WeightOptions options;
  options.dist = WeightOptions::Dist::kGeometric;
  options.min_weight = 1;
  options.max_weight = 10;
  options.decay = 0.7;
  const WeightedDigraph g = UniformWeightedDigraph(60, 150, 9, options);
  int64_t at_min = 0;
  for (const WeightedEdge& e : g.EdgeList()) {
    EXPECT_GE(e.weight, 1);
    at_min += e.weight == 1 ? 1 : 0;
  }
  // P(w = min) = 1 - decay = 0.3; with ~150 arcs some must sit at the
  // minimum and some above it.
  EXPECT_GT(at_min, 0);
  EXPECT_LT(at_min, g.NumEdges());
}

TEST(AttachRandomWeightsTest, PreservesTopology) {
  const Digraph base = RmatDigraph(5, 200, 21);
  WeightOptions options;
  options.max_weight = 5;
  const WeightedDigraph g = AttachRandomWeights(base, 3, options);
  EXPECT_EQ(g.NumVertices(), base.NumVertices());
  EXPECT_EQ(g.NumEdges(), base.NumEdges());
  for (const auto& [u, v] : base.EdgeList()) {
    EXPECT_TRUE(g.HasEdge(u, v));
  }
  EXPECT_GE(g.TotalWeight(), base.NumEdges());
}

}  // namespace
}  // namespace ddsgraph
