#include "serve/server.h"

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dds/engine.h"
#include "dds/solver.h"
#include "graph/generators.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"

namespace ddsgraph {
namespace {

// ------------------------------------------------------------- utilities

// Blocks the solve that carries it inside its first progress callback
// until Release(), which is how these tests pin a scheduler worker (or an
// engine) in the middle of a solve deterministically.
struct SolveGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  DdsProgressCallback AsProgress() {
    return [this](const DdsProgress&) {
      {
        std::lock_guard<std::mutex> lock(mu);
        entered = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return released; });
      return true;
    };
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

// Collects scheduler callback results across worker threads.
struct ResponseCollector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ServeResponse> responses;

  ServeCallback AsCallback() {
    return [this](ServeResponse response) {
      {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(response));
      }
      cv.notify_all();
    };
  }
  void WaitCount(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this, n] { return responses.size() >= n; });
  }
  size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return responses.size();
  }
};

// The schedule-independent prefix of a solution's JSON — the same slice
// SolutionSliceForCompare extracts from a wire response.
std::string SliceOf(const DdsSolution& solution,
                    const std::vector<uint64_t>& labels = {}) {
  const std::string json = SolutionJson(solution, labels);
  const size_t stats = json.find(", \"stats\"");
  EXPECT_NE(stats, std::string::npos) << json;
  return json.substr(0, stats);
}

ServeRequest MakeRequest(const std::string& graph, DdsAlgorithm algorithm) {
  ServeRequest request;
  request.graph = graph;
  request.request.algorithm = algorithm;
  return request;
}

// ------------------------------------------------------------- protocol

TEST(ServeProtocolTest, ParsesFlatObjectScalars) {
  const auto parsed = ParseFlatJsonObject(
      "{\"graph\": \"web\", \"deadline_ms\": 12.5, \"weighted\": true, "
      "\"note\": null}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& map = parsed.value();
  ASSERT_EQ(map.size(), 4u);
  EXPECT_EQ(map.at("graph").kind, JsonScalar::Kind::kString);
  EXPECT_EQ(map.at("graph").string_value, "web");
  EXPECT_EQ(map.at("deadline_ms").kind, JsonScalar::Kind::kNumber);
  EXPECT_DOUBLE_EQ(map.at("deadline_ms").number, 12.5);
  EXPECT_EQ(map.at("weighted").kind, JsonScalar::Kind::kBool);
  EXPECT_TRUE(map.at("weighted").boolean);
  EXPECT_EQ(map.at("note").kind, JsonScalar::Kind::kNull);
}

TEST(ServeProtocolTest, RejectsNestingDuplicatesAndTrailingBytes) {
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\": {\"b\": 1}}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\": [1, 2]}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\": 1, \"a\": 2}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseFlatJsonObject("not json at all").ok());
}

TEST(ServeProtocolTest, WireRequestDefaultsAndStrictKeys) {
  const auto ok = ParseWireRequest("{\"graph\": \"g\"}");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().graph, "g");
  EXPECT_EQ(ok.value().algo, "core-exact");
  EXPECT_FALSE(ok.value().weighted.has_value());
  EXPECT_EQ(ok.value().deadline_ms, 0);
  EXPECT_EQ(ok.value().threads, 1);

  // A typo'd key must fail loudly, not silently drop the option.
  const auto typo = ParseWireRequest("{\"graph\": \"g\", \"deadlin_ms\": 5}");
  ASSERT_FALSE(typo.ok());
  EXPECT_EQ(typo.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(typo.status().message().find("deadlin_ms"), std::string::npos);

  EXPECT_FALSE(ParseWireRequest("{}").ok());  // graph is required
  EXPECT_FALSE(
      ParseWireRequest("{\"graph\": \"g\", \"deadline_ms\": -1}").ok());
  EXPECT_FALSE(ParseWireRequest("{\"graph\": \"g\", \"threads\": 0}").ok());
  EXPECT_FALSE(ParseWireRequest("{\"graph\": \"g\", \"threads\": 1.5}").ok());
}

TEST(ServeProtocolTest, UnknownAlgoNamesTheRegistry) {
  const auto wire = ParseWireRequest("{\"graph\": \"g\", \"algo\": \"nope\"}");
  ASSERT_TRUE(wire.ok());
  const auto serve = ToServeRequest(wire.value());
  ASSERT_FALSE(serve.ok());
  EXPECT_EQ(serve.status().code(), StatusCode::kInvalidArgument);
  // The registry help string lists the real vocabulary.
  EXPECT_NE(serve.status().message().find("core-exact"), std::string::npos);
}

TEST(ServeProtocolTest, ResponseHelpersRoundTrip) {
  EXPECT_EQ(EscapeJsonString("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  const std::string error =
      ErrorResponseJson("17", Status::NotFound("no such graph 'x'"));
  EXPECT_EQ(FindJsonString(error, "status").value_or(""), "error");
  EXPECT_EQ(FindJsonString(error, "code").value_or(""), "NOT_FOUND");
  EXPECT_NE(error.find("\"id\": 17"), std::string::npos);
  EXPECT_EQ(FindJsonNumber("{\"queue_ms\": 1.25}", "queue_ms").value_or(0),
            1.25);
  EXPECT_FALSE(FindJsonNumber("{\"a\": 1}", "b").has_value());
}

// ------------------------------------------------------------ scheduler

TEST(ServeSchedulerTest, SolutionsBitIdenticalToDirectEngine) {
  const Digraph g = UniformDigraph(60, 300, 3);
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", g).ok());
  RequestScheduler scheduler(&catalog, SchedulerOptions{2, 16});
  scheduler.Start();

  const DdsAlgorithm algos[] = {DdsAlgorithm::kCoreExact,
                                DdsAlgorithm::kPeelApprox,
                                DdsAlgorithm::kCoreApprox};
  // Two rounds per algorithm: the second lands on a warm engine, so a
  // cross-request workspace leak would show up as a slice mismatch.
  std::vector<ResponseCollector> collected(6);
  for (int round = 0; round < 2; ++round) {
    for (int a = 0; a < 3; ++a) {
      ASSERT_TRUE(scheduler
                      .Submit(MakeRequest("uni", algos[a]),
                              collected[3 * round + a].AsCallback())
                      .ok());
    }
  }
  for (auto& c : collected) c.WaitCount(1);
  scheduler.Stop();
  EXPECT_EQ(scheduler.served(), 6);

  for (int a = 0; a < 3; ++a) {
    DdsEngine direct(g);
    DdsRequest request;
    request.algorithm = algos[a];
    const Result<DdsSolution> expected = direct.Solve(request);
    ASSERT_TRUE(expected.ok());
    const std::string want = SliceOf(expected.value());
    for (int round = 0; round < 2; ++round) {
      const ServeResponse& r = collected[3 * round + a].responses[0];
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_EQ(SliceOf(r.solution), want) << "round " << round;
      EXPECT_GE(r.queue_ms, 0);
      EXPECT_GT(r.solve_ms, 0);
      // The latency split also travels inside the solution stats.
      EXPECT_DOUBLE_EQ(r.solution.stats.queue_ms, r.queue_ms);
      EXPECT_DOUBLE_EQ(r.solution.stats.solve_ms, r.solve_ms);
    }
  }
}

TEST(ServeSchedulerTest, RejectionsAreSynchronousAndCallbackFree) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", UniformDigraph(20, 80, 1)).ok());
  RequestScheduler scheduler(&catalog, SchedulerOptions{1, 4});
  scheduler.Start();

  ResponseCollector never;
  const Status unknown = scheduler.Submit(
      MakeRequest("nope", DdsAlgorithm::kCoreExact), never.AsCallback());
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.message().find("nope"), std::string::npos);

  ServeRequest invalid = MakeRequest("uni", DdsAlgorithm::kCoreExact);
  invalid.request.threads = 0;  // ValidateRequest must catch this
  EXPECT_EQ(scheduler.Submit(std::move(invalid), never.AsCallback()).code(),
            StatusCode::kInvalidArgument);

  scheduler.Stop();
  EXPECT_EQ(never.Count(), 0u);
  EXPECT_EQ(scheduler.served(), 0);
}

TEST(ServeSchedulerTest, FullQueueRejectedWithUnavailable) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", UniformDigraph(30, 150, 5)).ok());
  // One worker, one queue slot: the tightest backpressure configuration.
  RequestScheduler scheduler(&catalog, SchedulerOptions{1, 1});
  scheduler.Start();

  SolveGate gate;
  ResponseCollector collector;
  ServeRequest gated = MakeRequest("uni", DdsAlgorithm::kCoreExact);
  gated.request.progress = gate.AsProgress();
  ASSERT_TRUE(scheduler.Submit(std::move(gated), collector.AsCallback()).ok());
  gate.WaitEntered();  // the only worker is now pinned mid-solve

  // One more fits in the queue; the next must bounce.
  ASSERT_TRUE(scheduler
                  .Submit(MakeRequest("uni", DdsAlgorithm::kPeelApprox),
                          collector.AsCallback())
                  .ok());
  const Status full = scheduler.Submit(
      MakeRequest("uni", DdsAlgorithm::kPeelApprox), collector.AsCallback());
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  EXPECT_NE(full.message().find("full"), std::string::npos);
  EXPECT_EQ(scheduler.rejected(), 1);

  gate.Release();
  collector.WaitCount(2);
  scheduler.Stop();
  EXPECT_EQ(scheduler.served(), 2);
  for (const ServeResponse& r : collector.responses) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
}

TEST(ServeSchedulerTest, QueueWaitChargesTheDeadline) {
  const Digraph g = UniformDigraph(150, 1200, 5);
  const double optimum = [&] {
    DdsEngine direct(g);
    DdsRequest full;
    full.algorithm = DdsAlgorithm::kCoreExact;
    return direct.Solve(full).value().density;
  }();

  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", g).ok());
  RequestScheduler scheduler(&catalog, SchedulerOptions{1, 4});
  scheduler.Start();

  // Pin the worker, then admit a deadlined request and let its whole
  // budget burn in the queue.
  SolveGate gate;
  ResponseCollector collector;
  // The gate rides on core-exact: only the anytime exact solvers invoke
  // the progress callback.
  ServeRequest gated = MakeRequest("uni", DdsAlgorithm::kCoreExact);
  gated.request.progress = gate.AsProgress();
  ASSERT_TRUE(scheduler.Submit(std::move(gated), collector.AsCallback()).ok());
  gate.WaitEntered();

  ServeRequest deadlined = MakeRequest("uni", DdsAlgorithm::kCoreExact);
  deadlined.request.deadline_seconds = 1e-4;
  ASSERT_TRUE(
      scheduler.Submit(std::move(deadlined), collector.AsCallback()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Release();
  collector.WaitCount(2);
  scheduler.Stop();

  // The expired request still produced an answer: the anytime incumbent
  // with a certified bracket around the true optimum, not an error.
  const ServeResponse& expired = collector.responses[1];
  ASSERT_TRUE(expired.status.ok()) << expired.status.ToString();
  EXPECT_TRUE(expired.solution.interrupted);
  EXPECT_LE(expired.solution.lower_bound, optimum + 1e-9);
  EXPECT_GE(expired.solution.upper_bound + 1e-9, optimum);
  EXPECT_GE(expired.queue_ms, 15.0);  // the sleep happened while queued
}

TEST(ServeSchedulerTest, StopDrainsEveryAdmittedRequest) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", UniformDigraph(30, 150, 5)).ok());
  RequestScheduler scheduler(&catalog, SchedulerOptions{1, 8});
  scheduler.Start();

  SolveGate gate;
  ResponseCollector collector;
  ServeRequest gated = MakeRequest("uni", DdsAlgorithm::kCoreExact);
  gated.request.progress = gate.AsProgress();
  ASSERT_TRUE(scheduler.Submit(std::move(gated), collector.AsCallback()).ok());
  gate.WaitEntered();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(MakeRequest("uni", DdsAlgorithm::kPeelApprox),
                            collector.AsCallback())
                    .ok());
  }

  // Stop with one request mid-solve and four queued: all five callbacks
  // must fire before Stop returns.
  std::thread stopper([&] { scheduler.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ResponseCollector late;
  EXPECT_EQ(scheduler
                .Submit(MakeRequest("uni", DdsAlgorithm::kPeelApprox),
                        late.AsCallback())
                .code(),
            StatusCode::kUnavailable);
  gate.Release();
  stopper.join();
  EXPECT_EQ(collector.Count(), 5u);
  EXPECT_EQ(scheduler.served(), 5);
  EXPECT_EQ(late.Count(), 0u);
  for (const ServeResponse& r : collector.responses) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
}

// --------------------------------------------------------------- server

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uni_ = UniformDigraph(60, 300, 3);
    wuni_ = UniformWeightedDigraph(50, 250, 7, WeightOptions{});
    ASSERT_TRUE(catalog_.AddGraph("uni", uni_).ok());
    ASSERT_TRUE(catalog_.AddWeightedGraph("wuni", wuni_).ok());
  }

  // Expected wire slice for (graph, algo), from a direct engine.
  std::string DirectSlice(const std::string& graph,
                          const std::string& algo) {
    DdsRequest request;
    request.algorithm = *ParseAlgorithmName(algo);
    Result<DdsSolution> solved =
        graph == "uni" ? DdsEngine(uni_).Solve(request)
                       : DdsEngine(wuni_).Solve(request);
    EXPECT_TRUE(solved.ok()) << solved.status().ToString();
    return SliceOf(solved.value());
  }

  Digraph uni_;
  WeightedDigraph wuni_;
  GraphCatalog catalog_;
};

TEST_F(ServeServerTest, ConcurrentClientsGetBitIdenticalSolutions) {
  ServerOptions options;  // ephemeral port
  options.scheduler.workers = 2;
  DdsServer server(&catalog_, options);
  const Result<int> port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  struct Item {
    std::string request;
    std::string expected;
  };
  std::vector<Item> items;
  for (const auto& [graph, algo] :
       std::vector<std::pair<std::string, std::string>>{
           {"uni", "core-exact"},
           {"uni", "peel-approx"},
           {"wuni", "core-exact"},
           {"wuni", "peel-approx"}}) {
    items.push_back({"{\"graph\": \"" + graph + "\", \"algo\": \"" + algo +
                         "\"}",
                     DirectSlice(graph, algo)});
  }

  std::vector<std::string> failures(4);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      ServeClient client;
      const Status connected = client.Connect("127.0.0.1", port.value());
      if (!connected.ok()) {
        failures[c] = connected.ToString();
        return;
      }
      for (int r = 0; r < 6; ++r) {
        const Item& item = items[(c + r) % items.size()];
        const Result<std::string> response = client.Call(item.request);
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        const Result<std::string> slice =
            SolutionSliceForCompare(response.value());
        if (!slice.ok() || slice.value() != item.expected) {
          failures[c] = "slice mismatch: " + response.value();
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  for (int c = 0; c < 4; ++c) EXPECT_EQ(failures[c], "") << "client " << c;
  EXPECT_EQ(server.scheduler().served(), 24);
}

TEST_F(ServeServerTest, ErrorResponsesKeepTheConnectionUsable) {
  DdsServer server(&catalog_, ServerOptions{});
  const Result<int> port = server.Start();
  ASSERT_TRUE(port.ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port.value()).ok());

  // Malformed JSON in a well-formed frame: error response, live socket.
  auto call = [&](const std::string& request) {
    const Result<std::string> response = client.Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? response.value() : std::string();
  };
  std::string r = call("this is not json");
  EXPECT_EQ(FindJsonString(r, "code").value_or(""), "INVALID_ARGUMENT");

  r = call("{\"graph\": \"missing\"}");
  EXPECT_EQ(FindJsonString(r, "code").value_or(""), "NOT_FOUND");

  r = call("{\"graph\": \"uni\", \"algo\": \"frobnicate\"}");
  EXPECT_EQ(FindJsonString(r, "code").value_or(""), "INVALID_ARGUMENT");
  EXPECT_NE(r.find("core-exact"), std::string::npos);  // registry help

  // Declared weightedness must match the catalog entry.
  r = call("{\"graph\": \"uni\", \"weighted\": true}");
  EXPECT_EQ(FindJsonString(r, "code").value_or(""), "INVALID_ARGUMENT");

  // And after four errors the same connection still serves a query.
  r = call("{\"graph\": \"uni\", \"algo\": \"peel-approx\", \"id\": 9}");
  EXPECT_EQ(FindJsonString(r, "status").value_or(""), "ok");
  EXPECT_NE(r.find("\"id\": 9"), std::string::npos);
  server.Stop();
}

TEST_F(ServeServerTest, StopDrainsWithClientsStillConnected) {
  DdsServer server(&catalog_, ServerOptions{});
  const Result<int> port = server.Start();
  ASSERT_TRUE(port.ok());

  ServeClient a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", port.value()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", port.value()).ok());
  ASSERT_TRUE(a.Call("{\"graph\": \"uni\", \"algo\": \"peel-approx\"}").ok());
  ASSERT_TRUE(b.Call("{\"graph\": \"wuni\", \"algo\": \"core-exact\"}").ok());

  // Idle connections must not wedge the drain.
  server.Stop();
  EXPECT_FALSE(a.Call("{\"graph\": \"uni\"}").ok());
  server.Stop();  // idempotent
}

// ------------------------------------------------------ engine reentrancy

TEST(DdsEngineReentrancyTest, ConcurrentSolveOnOneEngineIsUnavailable) {
  const Digraph g = UniformDigraph(30, 150, 5);
  DdsEngine engine(g);

  SolveGate gate;
  DdsRequest gated;
  gated.algorithm = DdsAlgorithm::kCoreExact;
  gated.progress = gate.AsProgress();
  Result<DdsSolution> first = Status::InvalidArgument("unset");
  std::thread solver([&] { first = engine.Solve(gated); });
  gate.WaitEntered();  // engine is now mid-solve on `solver`

  DdsRequest second;
  second.algorithm = DdsAlgorithm::kPeelApprox;
  const Result<DdsSolution> busy = engine.Solve(second);
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(busy.status().message().find("reentrant"), std::string::npos);

  gate.Release();
  solver.join();
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // The latch clears on exit: the engine serves again.
  EXPECT_TRUE(engine.Solve(second).ok());
}

}  // namespace
}  // namespace ddsgraph
