// The streaming verbs of the serve stack, driven end to end over real
// TCP: `update` batches into live catalog graphs, `list_graphs` /
// `server_stats` introspection, the per-verb wire schema, and the
// update-vs-solve race the per-entry locking must survive (the TSan CI
// job runs this suite).

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dds/engine.h"
#include "dds/solver.h"
#include "graph/generators.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "stream/edge_stream.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

class StreamServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uni_ = UniformDigraph(40, 160, 3);
    wuni_ = UniformWeightedDigraph(30, 120, 7, WeightOptions{});
    ASSERT_TRUE(catalog_.AddGraph("uni", uni_).ok());
    ASSERT_TRUE(catalog_.AddWeightedGraph("wuni", wuni_).ok());
  }

  // Starts the server and connects one client.
  void StartAndConnect(ServeClient* client) {
    server_ = std::make_unique<DdsServer>(&catalog_, ServerOptions{});
    const Result<int> port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    ASSERT_TRUE(client->Connect("127.0.0.1", port.value()).ok());
  }

  std::string Call(ServeClient* client, const std::string& request) {
    const Result<std::string> response = client->Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? response.value() : std::string();
  }

  Digraph uni_;
  WeightedDigraph wuni_;
  GraphCatalog catalog_;
  std::unique_ptr<DdsServer> server_;
};

TEST_F(StreamServeTest, UpdateVerbAppliesBatchesAndSolvesSeeThem) {
  ServeClient client;
  StartAndConnect(&client);

  // Plant a dense 3 x 4 block the base graph does not have; the solve
  // after the update must find a denser pair than the solve before it.
  EdgeBatch block;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 30; v < 34; ++v) block.push_back(EdgeOp::Insert(u, v));
  }
  const std::string before =
      Call(&client, "{\"graph\": \"uni\", \"algo\": \"core-exact\"}");
  ASSERT_EQ(FindJsonString(before, "status").value_or(""), "ok");

  const std::string update = Call(
      &client, "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"" +
                   FormatEdgeOps(block) + "\", \"id\": 5}");
  ASSERT_EQ(FindJsonString(update, "status").value_or(""), "ok") << update;
  EXPECT_EQ(FindJsonNumber(update, "version").value_or(-1), 1);
  EXPECT_NE(update.find("\"id\": 5"), std::string::npos);
  const double applied = FindJsonNumber(update, "applied").value_or(-1);
  EXPECT_GE(applied, 1);
  EXPECT_LE(applied, 12);

  // The wire solve after the update equals a direct engine solve on the
  // same logical graph, built statically — end-to-end identity through
  // overlay, compaction, engine rebind and serialization.
  std::vector<Edge> merged = uni_.EdgeList();
  for (const EdgeOp& op : block) merged.emplace_back(op.from, op.to);
  const Digraph updated = Digraph::FromEdges(40, std::move(merged));
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreExact;
  const Result<DdsSolution> direct = DdsEngine(updated).Solve(request);
  ASSERT_TRUE(direct.ok());

  const std::string after =
      Call(&client, "{\"graph\": \"uni\", \"algo\": \"core-exact\"}");
  ASSERT_EQ(FindJsonString(after, "status").value_or(""), "ok") << after;
  const double after_density = FindJsonNumber(after, "density").value_or(0);
  // The wire value is FormatDouble'd, so compare within its precision.
  EXPECT_NEAR(after_density, direct.value().density,
              1e-9 * std::max(1.0, direct.value().density));
  // The planted block can only raise the optimum, and at least to its own
  // density 12/sqrt(12) — proof the solve ran on the updated graph.
  EXPECT_GE(after_density,
            FindJsonNumber(before, "density").value_or(0) - 1e-9);
  EXPECT_GE(after_density, 12.0 / std::sqrt(12.0) - 1e-9);

  // A second update bumps the version again.
  const std::string update2 =
      Call(&client,
           "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"-0 30\"}");
  EXPECT_EQ(FindJsonNumber(update2, "version").value_or(-1), 2);
  server_->Stop();
}

TEST_F(StreamServeTest, WeightedUpdatesMergeWeights) {
  ServeClient client;
  StartAndConnect(&client);
  const std::string update = Call(
      &client,
      "{\"op\": \"update\", \"graph\": \"wuni\", \"weighted\": true, "
      "\"edges\": \"+0 1 5, +0 1 2\"}");
  ASSERT_EQ(FindJsonString(update, "status").value_or(""), "ok") << update;
  EXPECT_EQ(FindJsonNumber(update, "applied").value_or(-1), 2);
  server_->Stop();
}

TEST_F(StreamServeTest, ListGraphsAndServerStatsReportLiveState) {
  ServeClient client;
  StartAndConnect(&client);

  Call(&client, "{\"graph\": \"uni\", \"algo\": \"peel-approx\"}");
  Call(&client,
       "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"+0 39\"}");

  const std::string list =
      Call(&client, "{\"op\": \"list_graphs\", \"id\": 1}");
  EXPECT_EQ(FindJsonString(list, "status").value_or(""), "ok") << list;
  EXPECT_NE(list.find("\"name\": \"uni\""), std::string::npos);
  EXPECT_NE(list.find("\"name\": \"wuni\""), std::string::npos);
  // uni: one applied update batch, one solve; wuni: pristine.
  EXPECT_NE(list.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(list.find("\"version\": 0"), std::string::npos);
  EXPECT_NE(list.find("\"solves\": 1"), std::string::npos);

  const std::string stats =
      Call(&client, "{\"op\": \"server_stats\", \"id\": 2}");
  EXPECT_EQ(FindJsonString(stats, "status").value_or(""), "ok") << stats;
  EXPECT_EQ(FindJsonNumber(stats, "num_graphs").value_or(0), 2);
  // The introspection verbs are answered off-scheduler: only the solve
  // counts as accepted/served.
  EXPECT_EQ(FindJsonNumber(stats, "accepted").value_or(-1), 1);
  EXPECT_EQ(FindJsonNumber(stats, "served").value_or(-1), 1);
  EXPECT_EQ(FindJsonNumber(stats, "rejected").value_or(-1), 0);
  server_->Stop();
}

TEST_F(StreamServeTest, UpdateSchemaAndErrorCases) {
  ServeClient client;
  StartAndConnect(&client);
  auto code = [&](const std::string& request) {
    return FindJsonString(Call(&client, request), "code").value_or("");
  };

  EXPECT_EQ(code("{\"op\": \"update\", \"graph\": \"nope\", "
                 "\"edges\": \"+1 2\"}"),
            "NOT_FOUND");
  // The per-verb key matrix: solve keys are forbidden on update, edges is
  // required, and edges on a solve is rejected.
  EXPECT_EQ(code("{\"op\": \"update\", \"graph\": \"uni\", "
                 "\"edges\": \"+1 2\", \"algo\": \"core-exact\"}"),
            "INVALID_ARGUMENT");
  EXPECT_EQ(code("{\"op\": \"update\", \"graph\": \"uni\"}"),
            "INVALID_ARGUMENT");
  EXPECT_EQ(code("{\"graph\": \"uni\", \"edges\": \"+1 2\"}"),
            "INVALID_ARGUMENT");
  EXPECT_EQ(code("{\"op\": \"list_graphs\", \"graph\": \"uni\"}"),
            "INVALID_ARGUMENT");
  EXPECT_EQ(code("{\"op\": \"frobnicate\"}"), "INVALID_ARGUMENT");
  // Bad ops grammar and flavor mismatches.
  EXPECT_EQ(code("{\"op\": \"update\", \"graph\": \"uni\", "
                 "\"edges\": \"banana\"}"),
            "INVALID_ARGUMENT");
  EXPECT_EQ(code("{\"op\": \"update\", \"graph\": \"uni\", "
                 "\"edges\": \"+1 2 7\"}"),
            "INVALID_ARGUMENT");  // weight != 1 on an unweighted graph
  EXPECT_EQ(code("{\"op\": \"update\", \"graph\": \"uni\", "
                 "\"weighted\": true, \"edges\": \"+1 2\"}"),
            "INVALID_ARGUMENT");

  // After the error volley the connection still works.
  const std::string ok = Call(
      &client,
      "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"+1 2\"}");
  EXPECT_EQ(FindJsonString(ok, "status").value_or(""), "ok");
  server_->Stop();
}

// The race the dynamic catalog must survive: updates, solves and
// introspection hammering the same entry from concurrent connections.
// Run under TSan in CI; correctness here is "every response is ok and the
// final version equals the number of update batches".
TEST_F(StreamServeTest, ConcurrentUpdatesSolvesAndStatsRace) {
  ServerOptions options;
  options.scheduler.workers = 2;
  server_ = std::make_unique<DdsServer>(&catalog_, options);
  const Result<int> port = server_->Start();
  ASSERT_TRUE(port.ok());

  constexpr int kUpdates = 12;
  constexpr int kSolves = 8;
  std::vector<std::string> failures(3);

  std::thread updater([&] {
    ServeClient client;
    if (!client.Connect("127.0.0.1", port.value()).ok()) {
      failures[0] = "connect";
      return;
    }
    Rng rng(17);
    for (int i = 0; i < kUpdates; ++i) {
      EdgeBatch batch;
      for (int k = 0; k < 6; ++k) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(40));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(40));
        if (u == v) continue;
        batch.push_back(rng.NextBounded(4) == 0 ? EdgeOp::Delete(u, v)
                                                : EdgeOp::Insert(u, v));
      }
      if (batch.empty()) batch.push_back(EdgeOp::Insert(0, 1));
      const Result<std::string> r = client.Call(
          "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"" +
          FormatEdgeOps(batch) + "\"}");
      if (!r.ok() ||
          FindJsonString(r.value(), "status").value_or("") != "ok") {
        failures[0] = r.ok() ? r.value() : r.status().ToString();
        return;
      }
    }
  });
  std::thread solver([&] {
    ServeClient client;
    if (!client.Connect("127.0.0.1", port.value()).ok()) {
      failures[1] = "connect";
      return;
    }
    for (int i = 0; i < kSolves; ++i) {
      const std::string algo = i % 2 == 0 ? "core-approx" : "core-exact";
      const Result<std::string> r = client.Call(
          "{\"graph\": \"uni\", \"algo\": \"" + algo + "\"}");
      if (!r.ok() ||
          FindJsonString(r.value(), "status").value_or("") != "ok") {
        failures[1] = r.ok() ? r.value() : r.status().ToString();
        return;
      }
    }
  });
  std::thread observer([&] {
    ServeClient client;
    if (!client.Connect("127.0.0.1", port.value()).ok()) {
      failures[2] = "connect";
      return;
    }
    for (int i = 0; i < 10; ++i) {
      const std::string op = i % 2 == 0 ? "list_graphs" : "server_stats";
      const Result<std::string> r =
          client.Call("{\"op\": \"" + op + "\"}");
      if (!r.ok() ||
          FindJsonString(r.value(), "status").value_or("") != "ok") {
        failures[2] = r.ok() ? r.value() : r.status().ToString();
        return;
      }
    }
  });
  updater.join();
  solver.join();
  observer.join();
  server_->Stop();
  EXPECT_EQ(failures[0], "");
  EXPECT_EQ(failures[1], "");
  EXPECT_EQ(failures[2], "");

  const CatalogEntry* entry = catalog_.Find("uni");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->version(), kUpdates);
  EXPECT_EQ(entry->num_solves(), kSolves);
  // A post-race solve still answers and matches a fresh direct engine on
  // the entry's final snapshot — no torn state survived the race.
  DdsRequest request;
  request.algorithm = DdsAlgorithm::kCoreExact;
  const Result<DdsSolution> served = entry->Solve(request);
  ASSERT_TRUE(served.ok());
  EXPECT_GT(served.value().density, 0);
}

}  // namespace
}  // namespace ddsgraph
