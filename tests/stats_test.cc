#include "util/stats.h"

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(StatsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({1, 100}), 10.0);
  EXPECT_DOUBLE_EQ(GeometricMean({8}), 8.0);
  EXPECT_EQ(GeometricMean({2, 0}), 0.0);   // non-positive -> 0
  EXPECT_EQ(GeometricMean({}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5}, 0.9), 5.0);
}

TEST(StatsTest, SummarizeKnownSample) {
  const Summary s = Summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace ddsgraph
