#include "util/stats.h"

#include <string>

#include <gtest/gtest.h>

#include "dds/core_exact.h"
#include "dds/solver.h"
#include "graph/generators.h"

namespace ddsgraph {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(StatsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({1, 100}), 10.0);
  EXPECT_DOUBLE_EQ(GeometricMean({8}), 8.0);
  EXPECT_EQ(GeometricMean({2, 0}), 0.0);   // non-positive -> 0
  EXPECT_EQ(GeometricMean({}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5}, 0.9), 5.0);
}

TEST(StatsTest, SummarizeKnownSample) {
  const Summary s = Summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// ---------------------------------------------------------------------
// SolverStats kernel counters (arcs scanned, per-engine solve counts,
// global relabels) and their surfacing through ToString / SolutionJson.
// ---------------------------------------------------------------------

TEST(SolverStatsTest, KernelCountersFilledByExactSolve) {
  const Digraph g = UniformDigraph(20, 110, 21);
  // Force push-relabel so both kernels' counters are exercised: under
  // `auto` a graph this small stays below the fresh-solve cutoff and
  // would run Dinic only.
  ExactOptions pr_options;
  pr_options.flow_engine = FlowEngine::kPushRelabel;
  const DdsSolution pr_sol = SolveExactDds(g, pr_options);
  EXPECT_GT(pr_sol.stats.flow_solves_push_relabel, 0);
  EXPECT_EQ(pr_sol.stats.flow_solves_dinic, 0);
  EXPECT_GT(pr_sol.stats.arcs_scanned, 0);

  const DdsSolution sol = SolveExactDds(g, ExactOptions{});
  EXPECT_GT(sol.stats.arcs_scanned, 0);
  EXPECT_GT(sol.stats.flow_solves_dinic, 0);
  // At most one kernel solve per binary-search guess (guesses whose
  // refined core comes up empty are certified without a flow solve).
  EXPECT_LE(sol.stats.flow_solves_dinic + sol.stats.flow_solves_push_relabel,
            sol.stats.binary_search_iters);
  EXPECT_GT(sol.stats.flow_solves_dinic + sol.stats.flow_solves_push_relabel,
            0);
  EXPECT_GE(sol.stats.global_relabels, 0);
}

TEST(SolverStatsTest, ForcedDinicScansArcsWithoutGlobalRelabels) {
  const Digraph g = UniformDigraph(16, 70, 23);
  ExactOptions options;
  options.flow_engine = FlowEngine::kDinic;
  const DdsSolution sol = SolveExactDds(g, options);
  EXPECT_GT(sol.stats.arcs_scanned, 0);
  EXPECT_EQ(sol.stats.flow_solves_push_relabel, 0);
  EXPECT_EQ(sol.stats.global_relabels, 0);  // a push-relabel-only counter
}

TEST(SolverStatsTest, ToStringCarriesKernelCounters) {
  SolverStats stats;
  stats.arcs_scanned = 12345;
  stats.flow_solves_dinic = 7;
  stats.flow_solves_push_relabel = 3;
  stats.global_relabels = 2;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("arcs=12345"), std::string::npos) << s;
  EXPECT_NE(s.find("solves[dinic=7,pr=3,grel=2]"), std::string::npos) << s;
}

// The serve-path latency split (queue_ms / solve_ms) is zero outside the
// server and must stay invisible in ToString then — a one-shot CLI solve
// has no queue to report.
TEST(SolverStatsTest, ServeLatencySplitHiddenWhenZero) {
  SolverStats stats;
  EXPECT_EQ(stats.ToString().find("queue="), std::string::npos);
  stats.queue_ms = 1.25;
  stats.solve_ms = 40;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("queue=1.25ms"), std::string::npos) << s;
  EXPECT_NE(s.find("solve=40ms"), std::string::npos) << s;
}

TEST(SolverStatsTest, SolutionJsonCarriesServeLatencySplit) {
  const Digraph g = UniformDigraph(14, 60, 25);
  DdsSolution sol = SolveExactDds(g, ExactOptions{});
  // Outside the server the fields serialize as plain zeros.
  EXPECT_NE(SolutionJson(sol).find("\"queue_ms\": 0, \"solve_ms\": 0"),
            std::string::npos);
  sol.stats.queue_ms = 0.5;
  sol.stats.solve_ms = 2.25;
  const std::string json = SolutionJson(sol);
  EXPECT_NE(json.find("\"queue_ms\": 0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"solve_ms\": 2.25"), std::string::npos) << json;
}

TEST(SolverStatsTest, SolutionJsonCarriesKernelCounters) {
  const Digraph g = UniformDigraph(14, 60, 25);
  const DdsSolution sol = SolveExactDds(g, ExactOptions{});
  const std::string json = SolutionJson(sol);
  for (const char* key :
       {"\"arcs_scanned\": ", "\"global_relabels\": ",
        "\"flow_solves_dinic\": ", "\"flow_solves_push_relabel\": "}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // The emitted numbers are the stats' values, not placeholders.
  EXPECT_NE(json.find("\"arcs_scanned\": " +
                      std::to_string(sol.stats.arcs_scanned)),
            std::string::npos);
}

}  // namespace
}  // namespace ddsgraph
