// The self-healing client (serve/client.h) and the degraded-health
// surface (DESIGN.md §16): retry-with-backoff through injected
// UNAVAILABLE responses, reconnection across a server restart on the
// same port, socket timeout classification, and the health verb's
// "status": "ok" | "degraded" reasons (queue saturation, WAL fsync
// errors, recent cache eviction) — unit-level and over the wire.

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dds/solver.h"
#include "graph/generators.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "util/socket.h"

namespace ddsgraph {
namespace {

struct SolveGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  DdsProgressCallback AsProgress() {
    return [this](const DdsProgress&) {
      {
        std::lock_guard<std::mutex> lock(mu);
        entered = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return released; });
      return true;
    };
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

ServeRequest MakeRequest(const std::string& graph,
                         DdsAlgorithm algorithm) {
  ServeRequest request;
  request.graph = graph;
  request.request.algorithm = algorithm;
  return request;
}

// Fast-backoff client options so retry tests don't sleep for real.
ServeClientOptions FastRetry(int max_attempts) {
  ServeClientOptions options;
  options.max_attempts = max_attempts;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 10;
  options.connect_timeout_s = 5;
  options.read_timeout_s = 30;
  return options;
}

class ServeRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddGraph("uni", UniformDigraph(40, 160, 3)).ok());
  }
  void TearDown() override { Failpoints::DeactivateAll(); }

  int Start(int port = 0) {
    ServerOptions options;
    options.port = port;
    server_ = std::make_unique<DdsServer>(&catalog_, options);
    const Result<int> started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    return started.ok() ? started.value() : -1;
  }

  GraphCatalog catalog_;
  std::unique_ptr<DdsServer> server_;
};

TEST_F(ServeRetryTest, RetriesThroughInjectedUnavailableResponses) {
  const int port = Start();
  ServeClient client(FastRetry(8));
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  // The server's overload stand-in: the first two solve frames get the
  // same UNAVAILABLE a saturated admission queue would produce.
  Failpoints::Activate("serve:reject", Failpoints::Action::kError,
                       /*fire_after=*/0, /*fire_times=*/2);
  const Result<std::string> response =
      client.CallRetrying("{\"graph\": \"uni\", \"algo\": \"core-exact\"}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(FindJsonString(response.value(), "status").value_or(""), "ok");
  EXPECT_EQ(client.retries(), 2);
  EXPECT_EQ(client.reconnects(), 0);  // responses arrived; no transport loss
}

TEST_F(ServeRetryTest, PlainCallDoesNotRetryUnavailableResponses) {
  const int port = Start();
  ServeClient client(FastRetry(8));
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  Failpoints::Activate("serve:reject", Failpoints::Action::kError);
  const Result<std::string> response =
      client.Call("{\"graph\": \"uni\", \"algo\": \"core-exact\"}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(FindJsonString(response.value(), "code").value_or(""),
            "UNAVAILABLE");
}

TEST_F(ServeRetryTest, NonRetryableErrorsReturnImmediately) {
  const int port = Start();
  ServeClient client(FastRetry(8));
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  const Result<std::string> response =
      client.CallRetrying("{\"graph\": \"no-such-graph\"}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(FindJsonString(response.value(), "code").value_or(""),
            "NOT_FOUND");
  EXPECT_EQ(client.retries(), 0);  // a NOT_FOUND will not heal with time
}

TEST_F(ServeRetryTest, ReconnectsAcrossAServerRestartOnTheSamePort) {
  const int port = Start();
  ServeClient client(FastRetry(12));
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  const std::string solve = "{\"graph\": \"uni\", \"algo\": \"core-exact\"}";
  ASSERT_TRUE(client.CallRetrying(solve).ok());

  // Bounce the server: drain-stop, then a new instance on the same port
  // (SO_REUSEADDR makes the rebind immediate).
  server_->Stop();
  server_.reset();
  ASSERT_EQ(Start(port), port);

  // The client's first attempt hits the dead connection, reconnects with
  // backoff and completes — the e12 --restart_mid_run loop in miniature.
  const Result<std::string> response = client.CallRetrying(solve);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(FindJsonString(response.value(), "status").value_or(""), "ok");
  EXPECT_GE(client.reconnects(), 1);
  EXPECT_GE(client.retries(), 1);
}

TEST_F(ServeRetryTest, ConnectionRefusedIsRetryableUnavailable) {
  // Grab an ephemeral port, then close the listener so nothing owns it.
  int dead_port = 0;
  {
    const Result<UniqueSocket> listener =
        TcpListen("127.0.0.1", 0, &dead_port);
    ASSERT_TRUE(listener.ok());
  }
  ServeClient client(FastRetry(2));
  const Status refused = client.Connect("127.0.0.1", dead_port);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
}

TEST_F(ServeRetryTest, ReadTimeoutSurfacesAsUnavailable) {
  // A listener that never accepts: the connect lands in the backlog, the
  // request is written into the socket buffer, and no response ever
  // comes — exactly what a wedged server looks like from outside.
  int port = 0;
  const Result<UniqueSocket> listener = TcpListen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listener.ok());
  ServeClientOptions options = FastRetry(1);
  options.read_timeout_s = 0.2;
  ServeClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  const Result<std::string> response = client.Call("{\"op\": \"health\"}");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServeRetryTest, ExhaustedRetriesReturnTheLastTransportError) {
  const int port = Start();
  ServeClient client(FastRetry(3));
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  server_->Stop();
  server_.reset();  // nothing listens on `port` anymore
  const Result<std::string> response =
      client.CallRetrying("{\"graph\": \"uni\"}");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.retries(), 2);  // attempts 2 and 3 of 3
}

// ------------------------------------------------------ degraded health

class HealthDegradedTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DeactivateAll(); }
};

TEST_F(HealthDegradedTest, FreshServerReportsOkWithNoReasons) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", UniformDigraph(20, 80, 1)).ok());
  RequestScheduler scheduler(&catalog, SchedulerOptions{});
  scheduler.Start();
  const std::string health = HealthResponseJson("1", catalog, scheduler);
  EXPECT_EQ(FindJsonString(health, "status").value_or(""), "ok");
  EXPECT_NE(health.find("\"reasons\": []"), std::string::npos) << health;
  scheduler.Stop();
}

TEST_F(HealthDegradedTest, QueueSaturationReportsDegraded) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", UniformDigraph(30, 150, 5)).ok());
  SchedulerOptions options;
  options.workers = 1;
  options.queue_capacity = 5;
  RequestScheduler scheduler(&catalog, options);
  scheduler.Start();

  // Pin the only worker mid-solve, then fill 4 of the 5 queue slots:
  // 4/5 = 80% — the degraded threshold, while Submit still accepts.
  SolveGate gate;
  ServeRequest gated = MakeRequest("uni", DdsAlgorithm::kCoreExact);
  gated.request.progress = gate.AsProgress();
  std::mutex done_mu;
  std::condition_variable done_cv;
  int done = 0;
  const ServeCallback count = [&](ServeResponse) {
    std::lock_guard<std::mutex> lock(done_mu);
    ++done;
    done_cv.notify_all();
  };
  ASSERT_TRUE(scheduler.Submit(std::move(gated), count).ok());
  gate.WaitEntered();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        scheduler.Submit(MakeRequest("uni", DdsAlgorithm::kPeelApprox), count)
            .ok());
  }
  ASSERT_EQ(scheduler.queued(), 4);

  const std::string health = HealthResponseJson("1", catalog, scheduler);
  EXPECT_EQ(FindJsonString(health, "status").value_or(""), "degraded")
      << health;
  EXPECT_NE(health.find("\"queue_saturated\""), std::string::npos);
  // Liveness is a separate axis: a saturated server is still accepting.
  EXPECT_NE(health.find("\"healthy\": true"), std::string::npos);

  gate.Release();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == 5; });
  }
  // Drained: back to ok.
  const std::string drained = HealthResponseJson("1", catalog, scheduler);
  EXPECT_EQ(FindJsonString(drained, "status").value_or(""), "ok");
  scheduler.Stop();
}

TEST_F(HealthDegradedTest, WalFsyncErrorsReportDegradedOverTheWire) {
  const std::string dir =
      testing::TempDir() + "/health_wal_degraded";
  std::filesystem::remove_all(dir);
  GraphCatalog catalog;
  PersistOptions persist;
  persist.data_dir = dir;
  ASSERT_TRUE(catalog.EnablePersistence(persist).ok());
  ASSERT_TRUE(catalog.AddGraph("uni", UniformDigraph(30, 120, 3)).ok());

  DdsServer server(&catalog, ServerOptions{});
  const Result<int> port = server.Start();
  ASSERT_TRUE(port.ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port.value()).ok());

  // Healthy before the injected disk failure.
  Result<std::string> health = client.Call("{\"op\": \"health\"}");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(FindJsonString(health.value(), "status").value_or(""), "ok");

  // One failed fsync: the update errs (and is not acked), and health
  // flips to degraded — stickily, since a lost fsync can't be unlost.
  Failpoints::Activate("wal:fsync_error", Failpoints::Action::kError);
  const Result<std::string> update = client.Call(
      "{\"op\": \"update\", \"graph\": \"uni\", \"edges\": \"+1 2\"}");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(FindJsonString(update.value(), "status").value_or(""), "error");

  health = client.Call("{\"op\": \"health\"}");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(FindJsonString(health.value(), "status").value_or(""),
            "degraded")
      << health.value();
  EXPECT_NE(health.value().find("\"wal_sync_errors\""), std::string::npos);
  server.Stop();
}

TEST_F(HealthDegradedTest, CacheEvictionsReportDegradedThenDecay) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("uni", UniformDigraph(40, 160, 3)).ok());
  SchedulerOptions options;
  options.workers = 1;
  // A budget no two responses fit in: the second distinct solve evicts
  // the first.
  options.cache_bytes = 700;
  // Short window so this test can watch the signal decay.
  options.cache_eviction_window_s = 0.05;
  RequestScheduler scheduler(&catalog, options);
  scheduler.Start();

  std::mutex done_mu;
  std::condition_variable done_cv;
  int done = 0;
  const ServeCallback count = [&](ServeResponse) {
    std::lock_guard<std::mutex> lock(done_mu);
    ++done;
    done_cv.notify_all();
  };
  const DdsAlgorithm algos[] = {DdsAlgorithm::kCoreExact,
                                DdsAlgorithm::kPeelApprox,
                                DdsAlgorithm::kCoreApprox};
  for (const DdsAlgorithm algo : algos) {
    ASSERT_TRUE(scheduler.Submit(MakeRequest("uni", algo), count).ok());
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done >= 1; });
    done = 0;
  }
  ASSERT_GT(scheduler.cache_counters().evictions, 0)
      << "test premise: the cache budget must force an eviction";

  // Evicting *right now*: degraded, so clients and the monitor back off.
  const std::string health = HealthResponseJson("1", catalog, scheduler);
  EXPECT_EQ(FindJsonString(health, "status").value_or(""), "degraded");
  EXPECT_NE(health.find("\"cache_evicting\""), std::string::npos);

  // A bounded cache evicting occasionally is steady-state, not a fault:
  // once the pressure stops the signal must decay back to ok (unlike
  // wal_sync_errors, which is sticky on purpose).
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const std::string calmed = HealthResponseJson("1", catalog, scheduler);
  EXPECT_EQ(FindJsonString(calmed, "status").value_or(""), "ok") << calmed;
  scheduler.Stop();
}

}  // namespace
}  // namespace ddsgraph
