#include "util/peel_queue.h"

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

// The policy split is a compile-time contract: the unit policy *is* the
// bucket queue (zero behavioral drift possible), the weighted policy is
// the runtime hybrid that picks the bucket array for dense key ranges and
// the range-independent heap otherwise.
static_assert(std::is_same_v<PeelQueue<Digraph>, BucketQueue>);
static_assert(std::is_same_v<PeelQueue<WeightedDigraph>, HybridPeelQueue>);

TEST(LazyHeapQueueTest, BasicInsertPopOrdering) {
  LazyHeapQueue q(5, 100);
  q.Insert(0, 30);
  q.Insert(1, 10);
  q.Insert(2, 20);
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.PeekMinKey(), std::optional<int64_t>(10));
  auto popped = q.PopMin();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->first, 1u);
  EXPECT_EQ(popped->second, 10);
  q.DecreaseKey(0, 5);
  popped = q.PopMin();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->first, 0u);
  EXPECT_EQ(popped->second, 5);
  q.Remove(2);
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(q.PopMin().has_value());
  EXPECT_FALSE(q.PeekMinKey().has_value());
}

TEST(LazyHeapQueueTest, HugeKeysNeedNoKeyRangeAllocation) {
  // The reason the weighted policy exists: keys near 2^40 would demand a
  // terabyte-scale bucket array but are free for the heap.
  const int64_t big = int64_t{1} << 40;
  LazyHeapQueue q(3, big);
  q.Insert(0, big);
  q.Insert(1, big - 7);
  q.Insert(2, 3);
  EXPECT_EQ(q.PopMin()->second, 3);
  q.DecreaseKey(0, big - 9);
  EXPECT_EQ(q.PopMin()->first, 0u);
  EXPECT_EQ(q.PopMin()->first, 1u);
}

// The heart of the bit-identity story: the heap reproduces the bucket
// queue's extraction order — including LIFO tie-breaks among equal keys
// and stale-entry skipping — on arbitrary monotone operation sequences.
TEST(PeelQueueTest, HeapMatchesBucketOnRandomMonotoneSequences) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 1009 + 17);
    const uint32_t n = 40;
    const int64_t max_key = 60;
    BucketQueue bucket(n, max_key);
    LazyHeapQueue heap(n, max_key);
    std::vector<int64_t> key(n, -1);

    for (uint32_t v = 0; v < n; ++v) {
      const int64_t k = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(max_key) + 1));
      bucket.Insert(v, k);
      heap.Insert(v, k);
      key[v] = k;
    }

    int64_t live = n;
    int64_t ops = 0;
    while (live > 0 && ops < 4000) {
      ++ops;
      const uint64_t roll = rng.NextBounded(10);
      if (roll < 5) {
        // Decrease a random present item's key.
        const uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
        if (key[v] < 0) continue;
        const int64_t delta =
            static_cast<int64_t>(rng.NextBounded(3));  // 0..2 (0 = no-op)
        const int64_t nk = std::max<int64_t>(0, key[v] - delta);
        bucket.DecreaseKey(v, nk);
        heap.DecreaseKey(v, nk);
        key[v] = nk;
      } else if (roll < 7) {
        // Remove a random present item.
        const uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
        if (key[v] < 0) continue;
        bucket.Remove(v);
        heap.Remove(v);
        key[v] = -1;
        --live;
      } else if (roll == 7) {
        const auto bk = bucket.PeekMinKey();
        const auto hk = heap.PeekMinKey();
        EXPECT_EQ(bk, hk) << "seed " << seed << " op " << ops;
      } else {
        // Pop — the popped *item* must match, not just the key.
        const auto bp = bucket.PopMin();
        const auto hp = heap.PopMin();
        ASSERT_EQ(bp.has_value(), hp.has_value())
            << "seed " << seed << " op " << ops;
        if (bp.has_value()) {
          EXPECT_EQ(bp->first, hp->first) << "seed " << seed << " op " << ops;
          EXPECT_EQ(bp->second, hp->second)
              << "seed " << seed << " op " << ops;
          key[bp->first] = -1;
          --live;
        }
      }
      EXPECT_EQ(bucket.Size(), heap.Size());
      EXPECT_EQ(bucket.Empty(), heap.Empty());
    }
    // Drain what is left; the full tail order must agree too.
    while (true) {
      const auto bp = bucket.PopMin();
      const auto hp = heap.PopMin();
      ASSERT_EQ(bp.has_value(), hp.has_value()) << "seed " << seed;
      if (!bp.has_value()) break;
      EXPECT_EQ(bp->first, hp->first) << "seed " << seed;
      EXPECT_EQ(bp->second, hp->second) << "seed " << seed;
    }
  }
}

TEST(HybridPeelQueueTest, SelectsBucketForDenseKeyRangesAndHeapForWide) {
  // Dense regime: unit-weight lifts have max key <= n.
  HybridPeelQueue dense(1000, 999);
  EXPECT_TRUE(dense.uses_bucket_backend());
  // Wide regime: heavy-tailed weighted degrees, max key >> n.
  HybridPeelQueue wide(1000, int64_t{1} << 40);
  EXPECT_FALSE(wide.uses_bucket_backend());
  // The threshold is a function of (n, max_key) alone.
  EXPECT_TRUE(HybridPeelQueue::UsesBucket(16, 4096));
  EXPECT_FALSE(HybridPeelQueue::UsesBucket(16, 4097));
  EXPECT_TRUE(HybridPeelQueue::UsesBucket(1u << 20, 1 << 22));
}

TEST(HybridPeelQueueTest, BothBackendsMatchBucketPopOrder) {
  // Drive a bucket queue, a hybrid-on-bucket and a hybrid-on-heap with
  // the same monotone sequence; all three must extract identically. The
  // hybrid's backend choice is forced via the advertised max_key (the
  // keys themselves stay small so all three accept them).
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 131 + 7);
    const uint32_t n = 30;
    const int64_t max_key = 50;
    BucketQueue reference(n, max_key);
    HybridPeelQueue on_bucket(n, max_key);
    HybridPeelQueue on_heap(n, int64_t{1} << 40);
    ASSERT_TRUE(on_bucket.uses_bucket_backend());
    ASSERT_FALSE(on_heap.uses_bucket_backend());
    std::vector<int64_t> key(n, -1);
    for (uint32_t v = 0; v < n; ++v) {
      const int64_t k = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(max_key) + 1));
      reference.Insert(v, k);
      on_bucket.Insert(v, k);
      on_heap.Insert(v, k);
      key[v] = k;
    }
    for (int64_t ops = 0; ops < 400; ++ops) {
      const uint64_t roll = rng.NextBounded(4);
      if (roll < 2) {
        const uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
        if (key[v] < 0) continue;
        const int64_t nk =
            std::max<int64_t>(0, key[v] - static_cast<int64_t>(
                                              rng.NextBounded(3)));
        reference.DecreaseKey(v, nk);
        on_bucket.DecreaseKey(v, nk);
        on_heap.DecreaseKey(v, nk);
        key[v] = nk;
      } else {
        const auto rp = reference.PopMin();
        const auto bp = on_bucket.PopMin();
        const auto hp = on_heap.PopMin();
        ASSERT_EQ(rp.has_value(), bp.has_value());
        ASSERT_EQ(rp.has_value(), hp.has_value());
        if (!rp.has_value()) break;
        EXPECT_EQ(rp->first, bp->first) << "seed " << seed;
        EXPECT_EQ(rp->first, hp->first) << "seed " << seed;
        EXPECT_EQ(rp->second, hp->second) << "seed " << seed;
        key[rp->first] = -1;
      }
    }
  }
}

TEST(PeelQueueTest, ReinsertAfterPopAndRemove) {
  BucketQueue bucket(4, 10);
  LazyHeapQueue heap(4, 10);
  for (uint32_t v = 0; v < 4; ++v) {
    bucket.Insert(v, 5);
    heap.Insert(v, 5);
  }
  // Pop one, remove one, re-insert the popped item at the same key: the
  // stale entries must be skipped identically afterwards.
  const auto bp = bucket.PopMin();
  const auto hp = heap.PopMin();
  ASSERT_TRUE(bp.has_value());
  ASSERT_TRUE(hp.has_value());
  EXPECT_EQ(bp->first, hp->first);
  const uint32_t removed = bp->first == 0 ? 1 : 0;
  bucket.Remove(removed);
  heap.Remove(removed);
  bucket.Insert(bp->first, 5);
  heap.Insert(hp->first, 5);
  std::vector<uint32_t> bucket_order;
  std::vector<uint32_t> heap_order;
  while (const auto p = bucket.PopMin()) bucket_order.push_back(p->first);
  while (const auto p = heap.PopMin()) heap_order.push_back(p->first);
  EXPECT_EQ(bucket_order, heap_order);
}

}  // namespace
}  // namespace ddsgraph
