#include "util/memory.h"

#include <vector>

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(MemoryTest, ReportsPositiveRss) {
  EXPECT_GT(CurrentRssKib(), 0);
  EXPECT_GT(PeakRssKib(), 0);
}

TEST(MemoryTest, PeakIsAtLeastCurrent) {
  EXPECT_GE(PeakRssKib(), CurrentRssKib());
}

TEST(MemoryTest, PeakGrowsAfterLargeAllocation) {
  const int64_t before = PeakRssKib();
  // Touch ~64 MiB so it is actually resident.
  std::vector<char> block(64 * 1024 * 1024, 1);
  for (size_t i = 0; i < block.size(); i += 4096) block[i] = 2;
  const int64_t after = PeakRssKib();
  EXPECT_GE(after, before + 32 * 1024);  // at least 32 MiB growth observed
}

}  // namespace
}  // namespace ddsgraph
