#include "core/core_approx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/xy_core_decomposition.h"
#include "dds/naive_exact.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

TEST(CoreApproxTest, EmptyGraph) {
  const CoreApproxResult result = CoreApprox(Digraph::FromEdges(5, {}));
  EXPECT_TRUE(result.Empty());
  EXPECT_EQ(result.density, 0.0);
}

TEST(CoreApproxTest, SingleEdge) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  const CoreApproxResult result = CoreApprox(g);
  ASSERT_FALSE(result.Empty());
  EXPECT_EQ(result.best_x, 1);
  EXPECT_EQ(result.best_y, 1);
  EXPECT_NEAR(result.density, 1.0, 1e-12);
}

TEST(CoreApproxTest, BicliqueIsRecoveredExactly) {
  // Pure biclique s x t: best core is [t, s], density sqrt(s t) = rho_opt.
  const Digraph g = BicliqueWithNoise(9, 4, 5, 0, 1);
  const CoreApproxResult result = CoreApprox(g);
  EXPECT_EQ(result.best_x, 5);
  EXPECT_EQ(result.best_y, 4);
  EXPECT_NEAR(result.density, std::sqrt(20.0), 1e-9);
  EXPECT_EQ(result.core.s.size(), 4u);
  EXPECT_EQ(result.core.t.size(), 5u);
}

TEST(CoreApproxTest, BoundsAreOrdered) {
  const Digraph g = RmatDigraph(9, 8000, 17);
  const CoreApproxResult result = CoreApprox(g);
  ASSERT_FALSE(result.Empty());
  EXPECT_LE(result.lower_bound, result.density + 1e-9);
  EXPECT_NEAR(result.upper_bound, 2.0 * result.lower_bound, 1e-12);
  EXPECT_LE(result.density, result.upper_bound + 1e-9);
}

TEST(CoreApproxTest, ProductMatchesFullSkylineScan) {
  // The sqrt(m)-bounded double sweep must find the same max product as a
  // full skyline scan.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Digraph g = UniformDigraph(50, 400, seed);
    const CoreApproxResult result = CoreApprox(g);
    int64_t brute_best = 0;
    for (const SkylinePoint& p : CoreSkyline(g)) {
      brute_best = std::max(brute_best, p.x * p.y);
    }
    EXPECT_EQ(result.best_x * result.best_y, brute_best) << "seed " << seed;
  }
}

// The headline guarantee: density >= rho_opt / 2, and the certified bounds
// bracket rho_opt. Checked against the exhaustive solver on small random
// graphs of varying density.
class CoreApproxGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoreApproxGuaranteeTest, TwoApproximationHolds) {
  const auto [seed, density_class] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  const uint32_t n = 6 + static_cast<uint32_t>(rng.NextBounded(5));
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  const int64_t m =
      std::max<int64_t>(1, max_edges * (density_class + 1) / 8);
  const Digraph g = UniformDigraph(n, m, static_cast<uint64_t>(seed));
  const DdsSolution exact = NaiveExact(g);
  const CoreApproxResult approx = CoreApprox(g);
  ASSERT_FALSE(approx.Empty());
  EXPECT_GE(approx.density * 2.0 + 1e-9, exact.density)
      << "n=" << n << " m=" << m;
  EXPECT_LE(exact.density, approx.upper_bound + 1e-9);
  EXPECT_GE(exact.density + 1e-9, approx.lower_bound);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDensities, CoreApproxGuaranteeTest,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Range(0, 4)));

TEST(CoreApproxTest, PlantedBlockIsFound) {
  const PlantedDigraph planted =
      PlantedDenseBlock(400, 800, 14, 14, 1.0, 99);
  const CoreApproxResult result = CoreApprox(planted.graph);
  ASSERT_FALSE(result.Empty());
  // The planted 14x14 block has density 14; the approximation must reach
  // at least half of that, and in practice the exact block.
  EXPECT_GE(result.density * 2.0 + 1e-9, 14.0);
}

}  // namespace
}  // namespace ddsgraph
