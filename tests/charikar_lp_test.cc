#include "lp/charikar_lp.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "dds/naive_exact.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

TEST(CharikarLpTest, EmptyGraphIsTrivial) {
  const Digraph g = Digraph::FromEdges(3, {});
  const CharikarLpResult result = SolveCharikarLp(g, Fraction{1, 1});
  EXPECT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.lp_value, 0.0);
}

TEST(CharikarLpTest, SingleEdgeAtItsRatio) {
  // One edge (0 -> 1): at ratio a = 1 the optimum pair ({0},{1}) has
  // density 1, and LP(1) = 1.
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  const CharikarLpResult result = SolveCharikarLp(g, Fraction{1, 1});
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.lp_value, 1.0, 1e-8);
  EXPECT_NEAR(result.rounded_density, 1.0, 1e-9);
}

TEST(CharikarLpTest, BicliqueAtItsRatio) {
  // Complete 2x3 biclique: rho = 6 / sqrt(6), ratio 2/3.
  const Digraph g = BicliqueWithNoise(5, 2, 3, 0, 1);
  const CharikarLpResult result = SolveCharikarLp(g, Fraction{2, 3});
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  const double expected = 6.0 / std::sqrt(6.0);
  EXPECT_NEAR(result.lp_value, expected, 1e-7);
  EXPECT_NEAR(result.rounded_density, expected, 1e-9);
}

TEST(CharikarLpTest, LpUpperBoundsAnyPairAtThatRatio) {
  // For every pair (S,T) with |S|/|T| equal to the LP ratio, LP >= rho(S,T).
  const Digraph g = UniformDigraph(6, 14, 3);
  const CharikarLpResult result = SolveCharikarLp(g, Fraction{1, 2});
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  // Enumerate pairs with |S| = 1, |T| = 2 and |S| = 2, |T| = 4, etc.
  for (uint32_t s_mask = 1; s_mask < 64; ++s_mask) {
    for (uint32_t t_mask = 1; t_mask < 64; ++t_mask) {
      const int s_size = __builtin_popcount(s_mask);
      const int t_size = __builtin_popcount(t_mask);
      if (s_size * 2 != t_size) continue;
      DdsPair pair;
      for (VertexId v = 0; v < 6; ++v) {
        if (s_mask & (1u << v)) pair.s.push_back(v);
        if (t_mask & (1u << v)) pair.t.push_back(v);
      }
      EXPECT_GE(result.lp_value + 1e-7, DirectedDensity(g, pair));
    }
  }
}

// Property: maximizing the rounded density over all realizable ratios
// recovers the exact optimum (Charikar's theorem), checked against the
// exhaustive solver.
class CharikarLpExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CharikarLpExactnessTest, MaxOverRatiosIsExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  const uint32_t n = 4 + static_cast<uint32_t>(rng.NextBounded(3));
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  const int64_t m = 1 + static_cast<int64_t>(rng.NextBounded(max_edges));
  const Digraph g = UniformDigraph(n, m, GetParam() + 100);
  const DdsSolution exact = NaiveExact(g);

  double best_lp = 0;
  double best_rounded = 0;
  for (const Fraction& ratio : AllRealizableRatios(n)) {
    const CharikarLpResult lp = SolveCharikarLp(g, ratio);
    ASSERT_EQ(lp.status, LpStatus::kOptimal);
    best_lp = std::max(best_lp, lp.lp_value);
    best_rounded = std::max(best_rounded, lp.rounded_density);
  }
  EXPECT_NEAR(best_lp, exact.density, 1e-6);
  EXPECT_NEAR(best_rounded, exact.density, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CharikarLpExactnessTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace ddsgraph
