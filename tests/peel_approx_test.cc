#include "dds/peel_approx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dds/naive_exact.h"
#include "dds/weighted_dds.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

TEST(PeelApproxTest, EmptyGraph) {
  const DdsSolution sol = PeelApprox(Digraph::FromEdges(4, {}));
  EXPECT_EQ(sol.density, 0.0);
}

TEST(PeelApproxTest, SingleEdgeIsExact) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  const DdsSolution sol = PeelApprox(g);
  EXPECT_NEAR(sol.density, 1.0, 1e-12);
}

TEST(PeelApproxTest, BicliqueIsRecovered) {
  // Peeling a pure biclique never helps, so the full block is the best
  // intermediate pair at its own ratio.
  const Digraph g = BicliqueWithNoise(9, 4, 5, 0, 1);
  const DdsSolution sol = PeelApprox(g);
  EXPECT_NEAR(sol.density, std::sqrt(20.0), 1e-9);
}

TEST(PeelApproxTest, SolutionIsSelfConsistent) {
  const Digraph g = RmatDigraph(7, 900, 6);
  const DdsSolution sol = PeelApprox(g);
  EXPECT_NEAR(sol.density, DirectedDensity(g, sol.pair), 1e-12);
  EXPECT_EQ(sol.pair_edges, CountPairEdges(g, sol.pair.s, sol.pair.t));
  EXPECT_GE(sol.upper_bound, sol.density);
  EXPECT_GT(sol.stats.ratios_probed, 0);
}

TEST(PeelApproxTest, SmallerEpsilonProbesMoreRatios) {
  const Digraph g = UniformDigraph(60, 300, 2);
  PeelApproxOptions coarse;
  coarse.epsilon = 0.5;
  PeelApproxOptions fine;
  fine.epsilon = 0.05;
  const DdsSolution a = PeelApprox(g, coarse);
  const DdsSolution b = PeelApprox(g, fine);
  EXPECT_GT(b.stats.ratios_probed, 3 * a.stats.ratios_probed);
  // Finer ladders cannot do worse... on the ladder points they share; allow
  // small slack since ladders are not nested in general.
  EXPECT_GE(b.density + 0.05 * b.density + 1e-9, a.density);
}

// Approximation guarantee: density >= rho_opt / (2 phi(1+eps)), verified
// against ground truth on random graphs across density classes.
class PeelApproxGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PeelApproxGuaranteeTest, GuaranteeHolds) {
  const auto [seed, density_class] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 97 + 13);
  const uint32_t n = 5 + static_cast<uint32_t>(rng.NextBounded(6));
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  const int64_t m = std::max<int64_t>(1, max_edges * (1 + density_class) / 7);
  const Digraph g = UniformDigraph(n, m, static_cast<uint64_t>(seed) + 5);
  const DdsSolution exact = NaiveExact(g);
  PeelApproxOptions options;
  options.epsilon = 0.1;
  const DdsSolution approx = PeelApprox(g, options);
  const double guarantee =
      2.0 * RatioMismatchPhi(1.0 + options.epsilon);
  EXPECT_GE(approx.density * guarantee + 1e-9, exact.density)
      << "n=" << n << " m=" << m;
  // And the reported certified interval brackets the optimum.
  EXPECT_LE(exact.density, approx.upper_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDensities, PeelApproxGuaranteeTest,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Range(0, 4)));

// ------------------------------------------------------- weighted peeling

// All-weights-1 weighted peeling is the same templated code down to the
// heap-vs-bucket tie-breaks (util/peel_queue.h), so the whole solution —
// pair, density, certificate and stats counters — is bit-identical to the
// unweighted instantiation.
TEST(WeightedPeelApproxTest, UnitWeightsBitIdenticalToUnweighted) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Digraph base = RmatDigraph(6, 500, seed);
    const WeightedDigraph unit = WeightedDigraph::FromDigraph(base);
    const DdsSolution plain = PeelApprox(base);
    const DdsSolution weighted = PeelApprox(unit);
    EXPECT_EQ(weighted.pair.s, plain.pair.s) << "seed " << seed;
    EXPECT_EQ(weighted.pair.t, plain.pair.t) << "seed " << seed;
    EXPECT_EQ(weighted.density, plain.density) << "seed " << seed;
    EXPECT_EQ(weighted.pair_edges, plain.pair_edges) << "seed " << seed;
    EXPECT_EQ(weighted.lower_bound, plain.lower_bound) << "seed " << seed;
    EXPECT_EQ(weighted.upper_bound, plain.upper_bound) << "seed " << seed;
    EXPECT_EQ(weighted.stats.ratios_probed, plain.stats.ratios_probed);
  }
}

TEST(WeightedPeelApproxTest, HeavyEdgeBeatsBroadUnitBlock) {
  // A 3x3 unit block (weighted rho 3) loses to one edge of weight 10 —
  // the weighted objective must steer the peel to the heavy edge.
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 3; v < 6; ++v) edges.push_back({u, v, 1});
  }
  edges.push_back({6, 7, 10});
  const WeightedDigraph g = WeightedDigraph::FromEdges(8, edges);
  const DdsSolution sol = PeelApprox(g);
  EXPECT_NEAR(sol.density, 10.0, 1e-9);
  EXPECT_EQ(sol.pair.s, (std::vector<VertexId>{6}));
  EXPECT_EQ(sol.pair.t, (std::vector<VertexId>{7}));
}

// Certified bracket vs ground truth across both weight distributions and
// both weighted generators (the issue's acceptance matrix).
class WeightedPeelGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WeightedPeelGuaranteeTest, CertifiedBracketHoldsOnWeightedGraphs) {
  const auto [seed, dist] = GetParam();
  WeightOptions weights;
  weights.dist = dist == 0 ? WeightOptions::Dist::kUniform
                           : WeightOptions::Dist::kGeometric;
  weights.max_weight = 6;
  // Alternate the two weighted generators by seed parity.
  const WeightedDigraph g =
      (seed % 2 == 0)
          ? UniformWeightedDigraph(9, 30, static_cast<uint64_t>(seed) + 7,
                                   weights)
          : AttachRandomWeights(
                UniformDigraph(9, 26, static_cast<uint64_t>(seed) + 3),
                static_cast<uint64_t>(seed) + 11, weights);
  if (g.TotalWeight() == 0) return;
  const DdsSolution exact = WeightedNaiveExact(g);
  PeelApproxOptions options;
  options.epsilon = 0.1;
  const DdsSolution approx = PeelApprox(g, options);
  EXPECT_LE(exact.density, approx.upper_bound + 1e-9)
      << "seed " << seed << " dist " << dist;
  EXPECT_LE(approx.density, exact.density + 1e-9);
  const double guarantee = 2.0 * RatioMismatchPhi(1.0 + options.epsilon);
  EXPECT_GE(approx.density * guarantee + 1e-9, exact.density);
  EXPECT_NEAR(approx.density,
              PairDensity(g, approx.pair.s, approx.pair.t), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWeightDists, WeightedPeelGuaranteeTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 2)));

}  // namespace
}  // namespace ddsgraph
