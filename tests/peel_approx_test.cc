#include "dds/peel_approx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dds/naive_exact.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

TEST(PeelApproxTest, EmptyGraph) {
  const DdsSolution sol = PeelApprox(Digraph::FromEdges(4, {}));
  EXPECT_EQ(sol.density, 0.0);
}

TEST(PeelApproxTest, SingleEdgeIsExact) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  const DdsSolution sol = PeelApprox(g);
  EXPECT_NEAR(sol.density, 1.0, 1e-12);
}

TEST(PeelApproxTest, BicliqueIsRecovered) {
  // Peeling a pure biclique never helps, so the full block is the best
  // intermediate pair at its own ratio.
  const Digraph g = BicliqueWithNoise(9, 4, 5, 0, 1);
  const DdsSolution sol = PeelApprox(g);
  EXPECT_NEAR(sol.density, std::sqrt(20.0), 1e-9);
}

TEST(PeelApproxTest, SolutionIsSelfConsistent) {
  const Digraph g = RmatDigraph(7, 900, 6);
  const DdsSolution sol = PeelApprox(g);
  EXPECT_NEAR(sol.density, DirectedDensity(g, sol.pair), 1e-12);
  EXPECT_EQ(sol.pair_edges, CountPairEdges(g, sol.pair.s, sol.pair.t));
  EXPECT_GE(sol.upper_bound, sol.density);
  EXPECT_GT(sol.stats.ratios_probed, 0);
}

TEST(PeelApproxTest, SmallerEpsilonProbesMoreRatios) {
  const Digraph g = UniformDigraph(60, 300, 2);
  PeelApproxOptions coarse;
  coarse.epsilon = 0.5;
  PeelApproxOptions fine;
  fine.epsilon = 0.05;
  const DdsSolution a = PeelApprox(g, coarse);
  const DdsSolution b = PeelApprox(g, fine);
  EXPECT_GT(b.stats.ratios_probed, 3 * a.stats.ratios_probed);
  // Finer ladders cannot do worse... on the ladder points they share; allow
  // small slack since ladders are not nested in general.
  EXPECT_GE(b.density + 0.05 * b.density + 1e-9, a.density);
}

// Approximation guarantee: density >= rho_opt / (2 phi(1+eps)), verified
// against ground truth on random graphs across density classes.
class PeelApproxGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PeelApproxGuaranteeTest, GuaranteeHolds) {
  const auto [seed, density_class] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 97 + 13);
  const uint32_t n = 5 + static_cast<uint32_t>(rng.NextBounded(6));
  const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  const int64_t m = std::max<int64_t>(1, max_edges * (1 + density_class) / 7);
  const Digraph g = UniformDigraph(n, m, static_cast<uint64_t>(seed) + 5);
  const DdsSolution exact = NaiveExact(g);
  PeelApproxOptions options;
  options.epsilon = 0.1;
  const DdsSolution approx = PeelApprox(g, options);
  const double guarantee =
      2.0 * RatioMismatchPhi(1.0 + options.epsilon);
  EXPECT_GE(approx.density * guarantee + 1e-9, exact.density)
      << "n=" << n << " m=" << m;
  // And the reported certified interval brackets the optimum.
  EXPECT_LE(exact.density, approx.upper_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDensities, PeelApproxGuaranteeTest,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Range(0, 4)));

}  // namespace
}  // namespace ddsgraph
