#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "dds/core_exact.h"
#include "dds/flow_exact.h"
#include "dds/lp_exact.h"
#include "dds/naive_exact.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

// Tolerance for cross-checking exact solvers: they agree up to binary
// search termination plus floating point noise.
constexpr double kExactTol = 1e-6;

void ExpectValidSolution(const Digraph& g, const DdsSolution& sol) {
  // The reported density must be exactly the density of the reported pair.
  EXPECT_NEAR(sol.density, DirectedDensity(g, sol.pair), 1e-12);
  EXPECT_EQ(sol.pair_edges, CountPairEdges(g, sol.pair.s, sol.pair.t));
}

TEST(FlowExactTest, SingleEdge) {
  const Digraph g = Digraph::FromEdges(2, {{0, 1}});
  const DdsSolution sol = FlowExact(g);
  EXPECT_NEAR(sol.density, 1.0, kExactTol);
  ExpectValidSolution(g, sol);
}

TEST(FlowExactTest, EmptyGraph) {
  EXPECT_EQ(FlowExact(Digraph::FromEdges(3, {})).density, 0.0);
}

TEST(CoreExactTest, EmptyGraph) {
  EXPECT_EQ(CoreExact(Digraph::FromEdges(3, {})).density, 0.0);
}

TEST(CoreExactTest, Biclique) {
  const Digraph g = BicliqueWithNoise(9, 4, 5, 0, 1);
  const DdsSolution sol = CoreExact(g);
  EXPECT_NEAR(sol.density, std::sqrt(20.0), kExactTol);
  EXPECT_EQ(sol.pair.s.size(), 4u);
  EXPECT_EQ(sol.pair.t.size(), 5u);
  ExpectValidSolution(g, sol);
}

TEST(CoreExactTest, AsymmetricStarBeatsSymmetricReading) {
  // Out-star with 7 leaves: rho_opt = 7/sqrt(7) = sqrt(7) at ratio 1/7.
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 7; ++v) edges.push_back({0, v});
  const Digraph g = Digraph::FromEdges(8, edges);
  const DdsSolution sol = CoreExact(g);
  EXPECT_NEAR(sol.density, std::sqrt(7.0), kExactTol);
  EXPECT_EQ(sol.pair.s.size(), 1u);
  EXPECT_EQ(sol.pair.t.size(), 7u);
}

// ---------------------------------------------------------------------
// The central correctness sweep: on random graphs, every exact algorithm
// agrees with the exhaustive ground truth.
// ---------------------------------------------------------------------

struct SweepCase {
  int seed;
  uint32_t n;
  int64_t m;
};

class ExactAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Digraph MakeGraph() {
    const auto [seed, density_class] = GetParam();
    Rng rng(static_cast<uint64_t>(seed) * 2654435761u + 3);
    const uint32_t n = 4 + static_cast<uint32_t>(rng.NextBounded(6));  // 4..9
    const int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
    const int64_t m = std::max<int64_t>(
        1, max_edges * (1 + density_class) / 6);
    return UniformDigraph(n, m, static_cast<uint64_t>(seed) + 1000);
  }
};

TEST_P(ExactAgreementTest, FlowExactMatchesNaive) {
  const Digraph g = MakeGraph();
  const DdsSolution naive = NaiveExact(g);
  const DdsSolution flow = FlowExact(g);
  EXPECT_NEAR(flow.density, naive.density, kExactTol);
  ExpectValidSolution(g, flow);
}

TEST_P(ExactAgreementTest, DcExactMatchesNaive) {
  const Digraph g = MakeGraph();
  const DdsSolution naive = NaiveExact(g);
  const DdsSolution dc = DcExact(g);
  EXPECT_NEAR(dc.density, naive.density, kExactTol);
  ExpectValidSolution(g, dc);
}

TEST_P(ExactAgreementTest, CoreExactMatchesNaive) {
  const Digraph g = MakeGraph();
  const DdsSolution naive = NaiveExact(g);
  const DdsSolution core = CoreExact(g);
  EXPECT_NEAR(core.density, naive.density, kExactTol);
  ExpectValidSolution(g, core);
}

TEST_P(ExactAgreementTest, LpExactMatchesNaive) {
  const Digraph g = MakeGraph();
  const DdsSolution naive = NaiveExact(g);
  const DdsSolution lp = LpExact(g);
  EXPECT_NEAR(lp.density, naive.density, 1e-5);
  ExpectValidSolution(g, lp);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ExactAgreementTest,
    ::testing::Combine(::testing::Range(0, 15), ::testing::Range(0, 4)));

// Every combination of engine flags must stay exact (the flags are pure
// optimizations). This is the correctness side of ablation E7.
class ExactOptionsTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactOptionsTest, AllFlagCombinationsAgree) {
  const int mask = GetParam();
  ExactOptions options;
  options.divide_and_conquer = (mask & 1) != 0;
  options.core_pruning = (mask & 2) != 0;
  options.refine_cores_in_probe = (mask & 4) != 0;
  options.approx_warm_start = (mask & 8) != 0;
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    const Digraph g =
        UniformDigraph(8, 20 + static_cast<int64_t>(seed), seed);
    const DdsSolution naive = NaiveExact(g);
    const DdsSolution sol = SolveExactDds(g, options);
    EXPECT_NEAR(sol.density, naive.density, kExactTol)
        << "flag mask " << mask << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(FlagMasks, ExactOptionsTest,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------
// Flow-engine matrix: the max-flow kernel is a pure performance knob.
// Every engine reports the same minimal min cut (the residual
// source-reachable set is engine-independent), so the whole solve —
// witness pairs included — must be *bit-identical* across engines,
// incremental and fresh probes alike, for every preset and for weighted
// graphs too.
// ---------------------------------------------------------------------

// The three published presets the engine implements (DESIGN.md §3).
ExactOptions PresetOptions(int preset) {
  ExactOptions options;
  if (preset == 0) {  // FlowExact: exhaustive ratio enumeration
    options.divide_and_conquer = false;
    options.core_pruning = false;
    options.refine_cores_in_probe = false;
    options.approx_warm_start = false;
  } else if (preset == 1) {  // DcExact: D&C only
    options.core_pruning = false;
    options.refine_cores_in_probe = false;
    options.approx_warm_start = false;
  }
  // preset 2 = CoreExact = defaults.
  return options;
}

template <typename G>
void ExpectEngineMatrixBitIdentical(const G& g) {
  ExactOptions baseline_options = PresetOptions(0);
  for (int preset = 0; preset < 3; ++preset) {
    const DdsSolution baseline = SolveExactDds(g, PresetOptions(preset));
    for (FlowEngine engine :
         {FlowEngine::kAuto, FlowEngine::kDinic, FlowEngine::kPushRelabel}) {
      for (bool incremental : {true, false}) {
        ExactOptions options = PresetOptions(preset);
        options.flow_engine = engine;
        options.incremental_probe = incremental;
        const DdsSolution sol = SolveExactDds(g, options);
        const std::string label =
            std::string("preset ") + std::to_string(preset) + " engine " +
            FlowEngineName(engine) +
            (incremental ? " incremental" : " fresh");
        EXPECT_EQ(sol.density, baseline.density) << label;  // bit-exact
        EXPECT_EQ(sol.pair.s, baseline.pair.s) << label;
        EXPECT_EQ(sol.pair.t, baseline.pair.t) << label;
        EXPECT_EQ(sol.pair_edges, baseline.pair_edges) << label;
      }
    }
    // The presets agree with each other up to tolerance (not bit-exactly:
    // they follow different ratio trajectories).
    EXPECT_NEAR(baseline.density, SolveExactDds(g, baseline_options).density,
                kExactTol);
  }
}

class FlowEngineMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowEngineMatrixTest, EnginesBitIdenticalAcrossPresets) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const Digraph g = UniformDigraph(10, 30 + 4 * static_cast<int64_t>(seed),
                                   seed + 77);
  ExpectEngineMatrixBitIdentical(g);
}

TEST_P(FlowEngineMatrixTest, EnginesBitIdenticalOnWeightedGraphs) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const WeightedDigraph g = UniformWeightedDigraph(
      9, 26 + 3 * static_cast<int64_t>(seed), seed + 177);
  ExpectEngineMatrixBitIdentical(g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowEngineMatrixTest, ::testing::Range(0, 4));

// What `auto` actually dispatches, visible through the per-kernel solve
// counters: Dinic for warm incremental re-solves always, and — below the
// kAutoPushRelabelMinArcs fresh-solve cutoff, which every network of a
// graph this size is — Dinic for fresh builds too.
TEST(FlowEngineTest, AutoStaysOnDinicForSmallNetworks) {
  const Digraph g = UniformDigraph(24, 130, 12);
  for (bool incremental : {true, false}) {
    ExactOptions options;  // defaults: auto engine
    options.incremental_probe = incremental;
    const DdsSolution sol = SolveExactDds(g, options);
    EXPECT_GT(sol.stats.flow_solves_dinic, 0) << incremental;
    EXPECT_EQ(sol.stats.flow_solves_push_relabel, 0) << incremental;
    EXPECT_GT(sol.stats.arcs_scanned, 0) << incremental;
  }

  ExactOptions forced_pr;
  forced_pr.flow_engine = FlowEngine::kPushRelabel;
  const DdsSolution pr_only = SolveExactDds(g, forced_pr);
  EXPECT_EQ(pr_only.stats.flow_solves_dinic, 0);
  EXPECT_GT(pr_only.stats.flow_solves_push_relabel, 0);

  ExactOptions forced_dinic;
  forced_dinic.flow_engine = FlowEngine::kDinic;
  const DdsSolution dinic_only = SolveExactDds(g, forced_dinic);
  EXPECT_EQ(dinic_only.stats.flow_solves_push_relabel, 0);
  EXPECT_GT(dinic_only.stats.flow_solves_dinic, 0);
}

// Planted ground truth at a known ratio: the exact solvers must find the
// planted block (or something at least as dense).
TEST(CoreExactTest, RecoversPlantedBlock) {
  const PlantedDigraph planted =
      PlantedDenseBlock(120, 240, 8, 12, 1.0, 5);
  const DdsSolution sol = CoreExact(planted.graph);
  const double planted_density = DirectedDensity(
      planted.graph, planted.planted_s, planted.planted_t);
  EXPECT_GE(sol.density + kExactTol, planted_density);
  ExpectValidSolution(planted.graph, sol);
}

// Medium-size cross-check without ground truth: the three engine variants
// must agree with each other.
TEST(CoreExactTest, EngineVariantsAgreeOnMediumGraphs) {
  for (uint64_t seed : {1ull, 2ull}) {
    const Digraph g = RmatDigraph(6, 400, seed);
    const DdsSolution dc = DcExact(g);
    const DdsSolution core = CoreExact(g);
    EXPECT_NEAR(dc.density, core.density, kExactTol) << "seed " << seed;
  }
}

TEST(CoreExactTest, StatsAreFilled) {
  const Digraph g = UniformDigraph(30, 200, 4);
  ExactOptions options;
  options.record_network_sizes = true;
  const DdsSolution sol = SolveExactDds(g, options);
  EXPECT_GT(sol.stats.ratios_probed, 0);
  EXPECT_GT(sol.stats.flow_networks_built, 0);
  EXPECT_GT(sol.stats.binary_search_iters, 0);
  EXPECT_GT(sol.stats.max_network_nodes, 0);
  EXPECT_FALSE(sol.stats.network_sizes.empty());
  EXPECT_GE(sol.stats.seconds, 0.0);
}

TEST(CoreExactTest, CoreExactProbesFewerRatiosThanFlowExact) {
  const Digraph g = UniformDigraph(24, 120, 8);
  const DdsSolution flow = FlowExact(g);
  const DdsSolution core = CoreExact(g);
  EXPECT_NEAR(flow.density, core.density, kExactTol);
  // The headline claim at miniature scale: D&C probes far fewer ratios.
  EXPECT_LT(core.stats.ratios_probed, flow.stats.ratios_probed / 4);
}

TEST(ExactSearchDeltaTest, ScalesWithGraphSize) {
  const Digraph small = UniformDigraph(6, 10, 1);
  const Digraph large = UniformDigraph(500, 4000, 1);
  EXPECT_GT(ExactSearchDelta(small), ExactSearchDelta(large));
  EXPECT_GE(ExactSearchDelta(large), 1e-12);
  EXPECT_LE(ExactSearchDelta(small), 1e-4);
}

}  // namespace
}  // namespace ddsgraph
