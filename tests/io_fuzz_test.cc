// Robustness ("fuzz-lite") tests for the SNAP loader: arbitrary byte soup
// must never crash — every input either parses or returns a clean Status.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "util/random.h"

namespace ddsgraph {
namespace {

class IoFuzzTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& name, const std::string& body) {
    const std::string path = testing::TempDir() + "/" + name;
    std::ofstream out(path, std::ios::binary);
    out << body;
    return path;
  }
};

TEST_F(IoFuzzTest, EmptyFileIsAnEmptyGraph) {
  const auto loaded = LoadSnapEdgeList(WriteTemp("empty.txt", ""));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.NumVertices(), 0u);
}

TEST_F(IoFuzzTest, OnlyCommentsIsAnEmptyGraph) {
  const auto loaded = LoadSnapEdgeList(
      WriteTemp("comments.txt", "# one\n% two\n#\n"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.NumEdges(), 0);
}

TEST_F(IoFuzzTest, TrailingTokensAreTolerated) {
  // SNAP files sometimes carry extra columns (timestamps, weights); the
  // loader reads the first two and ignores the rest of the line.
  const auto loaded = LoadSnapEdgeList(
      WriteTemp("extra.txt", "0 1 170000\n1 2 170001\n"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.NumEdges(), 2);
}

TEST_F(IoFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(271828);
  const std::string alphabet =
      "0123456789 \t\n#%-abcxyz.";
  for (int trial = 0; trial < 50; ++trial) {
    std::string soup;
    const size_t len = rng.NextBounded(400);
    for (size_t i = 0; i < len; ++i) {
      soup += alphabet[rng.NextBounded(alphabet.size())];
    }
    const auto loaded = LoadSnapEdgeList(
        WriteTemp("soup" + std::to_string(trial) + ".txt", soup));
    // Either outcome is fine; it just must not crash and, on success,
    // produce a structurally sound graph.
    if (loaded.ok()) {
      const Digraph& g = loaded.value().graph;
      int64_t degree_sum = 0;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        degree_sum += g.OutDegree(v);
      }
      EXPECT_EQ(degree_sum, g.NumEdges());
    } else {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

TEST_F(IoFuzzTest, BinaryLoaderRejectsRandomBytes) {
  Rng rng(314159);
  for (int trial = 0; trial < 20; ++trial) {
    std::string bytes;
    const size_t len = 8 + rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      bytes += static_cast<char>(rng.NextBounded(256));
    }
    const auto loaded = LoadBinary(
        WriteTemp("bin" + std::to_string(trial) + ".bin", bytes));
    // A random 8-byte magic matching ours is astronomically unlikely, so
    // these must all fail cleanly.
    EXPECT_FALSE(loaded.ok());
  }
}

}  // namespace
}  // namespace ddsgraph
