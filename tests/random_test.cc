#include "util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace ddsgraph {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) differing += (a() != b()) ? 1 : 0;
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000003ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  for (uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kDraws / kBound, 500) << "value " << v;
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RandomPermutationTest, IsAPermutation) {
  Rng rng(3);
  const std::vector<uint32_t> perm = RandomPermutation(100, rng);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 100u);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(17);
  for (uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    const std::vector<uint32_t> sample = SampleWithoutReplacement(100, k, rng);
    EXPECT_EQ(sample.size(), k);
    std::set<uint32_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), k);
    for (uint32_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(SampleWithoutReplacementTest, FullSampleIsPermutation) {
  Rng rng(19);
  const std::vector<uint32_t> sample = SampleWithoutReplacement(64, 64, rng);
  std::set<uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  uint64_t replay = 0;
  EXPECT_EQ(SplitMix64(replay), first);
  EXPECT_EQ(SplitMix64(replay), second);
}

}  // namespace
}  // namespace ddsgraph
